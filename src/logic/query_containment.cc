#include "logic/query_containment.h"

#include <atomic>
#include <string>
#include <vector>

#include "base/substitution.h"
#include "chase/homomorphism.h"
#include "relational/instance.h"

namespace dxrec {

namespace {

// Freezes a CQ: body variables become fresh constants. Returns the
// canonical database and the frozen images of the free variables.
struct FrozenQuery {
  Instance canonical;
  std::vector<Term> frozen_head;
};

FrozenQuery Freeze(const ConjunctiveQuery& query) {
  static std::atomic<uint64_t>& counter = *new std::atomic<uint64_t>(0);
  Substitution freezing;
  for (const Atom& atom : query.body()) {
    for (Term t : atom.args()) {
      if (t.is_variable() && !freezing.Binds(t)) {
        freezing.Set(t, Term::Constant(
                            "@q" + std::to_string(counter.fetch_add(1))));
      }
    }
  }
  FrozenQuery out;
  for (const Atom& atom : query.body()) {
    out.canonical.Add(atom.Apply(freezing));
  }
  out.frozen_head = freezing.Apply(query.free_vars());
  return out;
}

// left subseteq right iff right maps into left's canonical db hitting
// the frozen head.
bool ContainedCq(const ConjunctiveQuery& left,
                 const ConjunctiveQuery& right) {
  if (left.free_vars().size() != right.free_vars().size()) return false;
  FrozenQuery frozen = Freeze(left);
  HomSearchOptions options;
  for (size_t i = 0; i < right.free_vars().size(); ++i) {
    // The containment mapping must send right's head onto left's frozen
    // head, position by position. A repeated head variable with
    // conflicting targets simply yields no homomorphism.
    Term v = right.free_vars()[i];
    if (options.fixed.Binds(v)) {
      if (options.fixed.Apply(v) != frozen.frozen_head[i]) return false;
    } else {
      options.fixed.Set(v, frozen.frozen_head[i]);
    }
  }
  return FindHomomorphism(right.body(), frozen.canonical, options)
      .has_value();
}

}  // namespace

bool IsContainedIn(const ConjunctiveQuery& left,
                   const ConjunctiveQuery& right) {
  return ContainedCq(left, right);
}

bool IsContainedIn(const UnionQuery& left, const UnionQuery& right) {
  if (left.arity() != right.arity()) return false;
  for (const ConjunctiveQuery& l : left.disjuncts()) {
    bool covered = false;
    for (const ConjunctiveQuery& r : right.disjuncts()) {
      if (ContainedCq(l, r)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool AreEquivalent(const ConjunctiveQuery& left,
                   const ConjunctiveQuery& right) {
  return IsContainedIn(left, right) && IsContainedIn(right, left);
}

bool AreEquivalent(const UnionQuery& left, const UnionQuery& right) {
  return IsContainedIn(left, right) && IsContainedIn(right, left);
}

ConjunctiveQuery Minimize(const ConjunctiveQuery& query) {
  ConjunctiveQuery current = query;
  bool changed = true;
  while (changed && current.body().size() > 1) {
    changed = false;
    for (size_t drop = 0; drop < current.body().size(); ++drop) {
      std::vector<Atom> smaller;
      for (size_t i = 0; i < current.body().size(); ++i) {
        if (i != drop) smaller.push_back(current.body()[i]);
      }
      Result<ConjunctiveQuery> candidate =
          ConjunctiveQuery::Make(current.free_vars(), smaller);
      if (!candidate.ok()) continue;  // dropping would unsafe a head var
      if (AreEquivalent(current, *candidate)) {
        current = std::move(*candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

UnionQuery Minimize(const UnionQuery& query) {
  std::vector<ConjunctiveQuery> minimized;
  for (const ConjunctiveQuery& cq : query.disjuncts()) {
    minimized.push_back(Minimize(cq));
  }
  // Drop disjuncts contained in another disjunct.
  std::vector<ConjunctiveQuery> kept;
  for (size_t i = 0; i < minimized.size(); ++i) {
    bool redundant = false;
    for (size_t j = 0; j < minimized.size() && !redundant; ++j) {
      if (i == j) continue;
      if (!ContainedCq(minimized[i], minimized[j])) continue;
      // Contained in j: redundant unless j is mutually contained and
      // j < i already kept (keep the first representative).
      if (!ContainedCq(minimized[j], minimized[i]) || j < i) {
        redundant = true;
      }
    }
    if (!redundant) kept.push_back(minimized[i]);
  }
  Result<UnionQuery> out = UnionQuery::Make(std::move(kept));
  // Every input disjunct is contained in itself, so `kept` is non-empty
  // and Make cannot fail.
  return std::move(*out);
}

}  // namespace dxrec
