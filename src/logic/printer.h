// Rendering helpers for composite objects (instance sets, answer sets).
// Individual types carry their own ToString(); these helpers format the
// aggregates the recovery API returns.
#ifndef DXREC_LOGIC_PRINTER_H_
#define DXREC_LOGIC_PRINTER_H_

#include <set>
#include <string>
#include <vector>

#include "base/term.h"
#include "relational/instance.h"

namespace dxrec {

// Answers of a query: a sorted set of term tuples.
using AnswerTuple = std::vector<Term>;
using AnswerSet = std::set<AnswerTuple>;

// "(a, b)".
std::string ToString(const AnswerTuple& tuple);

// "{(a), (b)}"; "{}" when empty; "true"/"false" for Boolean answer sets
// would be misleading, so the empty-tuple set prints as "{()}".
std::string ToString(const AnswerSet& answers);

// One instance per line, each in canonical-null form, sorted, prefixed by
// "I<k> = ".
std::string ToString(const std::vector<Instance>& instances);

}  // namespace dxrec

#endif  // DXREC_LOGIC_PRINTER_H_
