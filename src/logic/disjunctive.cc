#include "logic/disjunctive.h"

#include <set>

#include "chase/homomorphism.h"
#include "obs/events.h"
#include "relational/instance_ops.h"
#include "resilience/execution_context.h"

namespace dxrec {

namespace {

// Variables of `atoms`, deduplicated.
std::vector<Term> VarsOf(const std::vector<Atom>& atoms) {
  std::vector<Term> out;
  std::unordered_set<Term, TermHash> seen;
  for (const Atom& a : atoms) {
    for (Term t : a.args()) {
      if (t.is_variable() && seen.insert(t).second) out.push_back(t);
    }
  }
  return out;
}

}  // namespace

Result<DisjunctiveTgd> DisjunctiveTgd::Make(
    std::vector<Atom> body, std::vector<std::vector<Atom>> alternatives) {
  if (body.empty()) {
    return Status::InvalidArgument("disjunctive tgd needs a body");
  }
  if (alternatives.empty()) {
    return Status::InvalidArgument(
        "disjunctive tgd needs at least one head alternative");
  }
  for (const std::vector<Atom>& alt : alternatives) {
    if (alt.empty()) {
      return Status::InvalidArgument("empty head alternative");
    }
  }
  DisjunctiveTgd out;
  out.body_ = std::move(body);
  out.alternatives_ = std::move(alternatives);
  return out;
}

std::string DisjunctiveTgd::ToString() const {
  std::string out;
  bool first = true;
  for (const Atom& a : body_) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString();
  }
  out += " -> ";
  for (size_t i = 0; i < alternatives_.size(); ++i) {
    if (i > 0) out += " | ";
    bool first_atom = true;
    for (const Atom& a : alternatives_[i]) {
      if (!first_atom) out += ", ";
      first_atom = false;
      out += a.ToString();
    }
  }
  return out;
}

size_t DisjunctiveMapping::Add(DisjunctiveTgd tgd) {
  // Rename colliding variables apart, mirroring DependencySet.
  Substitution renaming;
  std::vector<Term> vars = VarsOf(tgd.body());
  for (const std::vector<Atom>& alt : tgd.alternatives()) {
    for (Term v : VarsOf(alt)) {
      bool known = false;
      for (Term u : vars) {
        if (u == v) known = true;
      }
      if (!known) vars.push_back(v);
    }
  }
  for (Term v : vars) {
    if (used_vars_.count(v) > 0) {
      renaming.Set(v, FreshVariable(v.ToString()));
    }
  }
  if (!renaming.empty()) {
    std::vector<Atom> body;
    for (const Atom& a : tgd.body()) body.push_back(a.Apply(renaming));
    std::vector<std::vector<Atom>> alts;
    for (const std::vector<Atom>& alt : tgd.alternatives()) {
      std::vector<Atom> renamed;
      for (const Atom& a : alt) renamed.push_back(a.Apply(renaming));
      alts.push_back(std::move(renamed));
    }
    tgd = std::move(*DisjunctiveTgd::Make(std::move(body), std::move(alts)));
  }
  for (Term v : VarsOf(tgd.body())) used_vars_.insert(v);
  for (const std::vector<Atom>& alt : tgd.alternatives()) {
    for (Term v : VarsOf(alt)) used_vars_.insert(v);
  }
  tgds_.push_back(std::move(tgd));
  return tgds_.size() - 1;
}

std::string DisjunctiveMapping::ToString() const {
  std::string out;
  for (const DisjunctiveTgd& tgd : tgds_) {
    out += tgd.ToString();
    out += "\n";
  }
  return out;
}

Result<std::vector<Instance>> DisjunctiveChase(
    const DisjunctiveMapping& mapping, const Instance& input,
    NullSource* nulls, const DisjunctiveChaseOptions& options) {
  // Collect triggers across all disjunctive tgds.
  struct DisTrigger {
    size_t tgd;
    Substitution hom;
  };
  std::vector<DisTrigger> triggers;
  for (size_t i = 0; i < mapping.size(); ++i) {
    for (Substitution& h :
         FindHomomorphisms(mapping.at(i).body(), input)) {
      triggers.push_back(DisTrigger{i, std::move(h)});
    }
  }

  // Worlds = choice functions: expand trigger by trigger.
  std::vector<Instance> worlds(1);
  for (const DisTrigger& trigger : triggers) {
    Status checkpoint = resilience::CheckPoint(
        options.context, "disjunctive.trigger", "disjunctive_chase");
    if (!checkpoint.ok()) return checkpoint;
    const DisjunctiveTgd& tgd = mapping.at(trigger.tgd);
    std::vector<Instance> expanded;
    expanded.reserve(worlds.size() * tgd.num_alternatives());
    for (const Instance& world : worlds) {
      for (const std::vector<Atom>& alt : tgd.alternatives()) {
        // Per-alternative existentials get fresh nulls per world branch.
        Substitution extended = trigger.hom;
        for (Term v : VarsOf(alt)) {
          if (!extended.Binds(v)) extended.Set(v, nulls->Fresh());
        }
        Instance next = world;
        for (const Atom& a : alt) next.Add(a.Apply(extended));
        expanded.push_back(std::move(next));
        if (expanded.size() > options.max_worlds) {
          return obs::BudgetExhausted({"disjunctive.worlds",
                                       options.max_worlds, expanded.size(),
                                       "disjunctive_chase"});
        }
      }
    }
    worlds = std::move(expanded);
  }

  // Dedup exact duplicates (different choices can coincide).
  std::vector<Instance> unique;
  std::set<std::string> seen;
  for (Instance& world : worlds) {
    if (seen.insert(CanonicalString(world)).second) {
      unique.push_back(std::move(world));
    }
  }
  return unique;
}

}  // namespace dxrec
