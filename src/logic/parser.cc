#include "logic/parser.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/fresh.h"

namespace dxrec {

namespace {

enum class TokKind {
  kIdent,    // bare identifier or number
  kQuoted,   // 'quoted'
  kLParen,
  kRParen,
  kComma,
  kColon,
  kSemicolon,
  kPipe,
  kArrow,    // ->
  kTurnstile,  // :-
  kLBrace,
  kRBrace,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = text_.size();
    while (i < n) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '#') {  // comment to end of line
        while (i < n && text_[i] != '\n') ++i;
        continue;
      }
      size_t start = i;
      if (c == '(') {
        out.push_back({TokKind::kLParen, "(", start});
        ++i;
      } else if (c == ')') {
        out.push_back({TokKind::kRParen, ")", start});
        ++i;
      } else if (c == ',') {
        out.push_back({TokKind::kComma, ",", start});
        ++i;
      } else if (c == ';') {
        out.push_back({TokKind::kSemicolon, ";", start});
        ++i;
      } else if (c == '|') {
        out.push_back({TokKind::kPipe, "|", start});
        ++i;
      } else if (c == '{') {
        out.push_back({TokKind::kLBrace, "{", start});
        ++i;
      } else if (c == '}') {
        out.push_back({TokKind::kRBrace, "}", start});
        ++i;
      } else if (c == '-') {
        if (i + 1 < n && text_[i + 1] == '>') {
          out.push_back({TokKind::kArrow, "->", start});
          i += 2;
        } else {
          return Status::InvalidArgument(Where(start, "expected '->'"));
        }
      } else if (c == ':') {
        if (i + 1 < n && text_[i + 1] == '-') {
          out.push_back({TokKind::kTurnstile, ":-", start});
          i += 2;
        } else {
          out.push_back({TokKind::kColon, ":", start});
          ++i;
        }
      } else if (c == '\'') {
        ++i;
        std::string value;
        while (i < n && text_[i] != '\'') value += text_[i++];
        if (i >= n) {
          return Status::InvalidArgument(
              Where(start, "unterminated quoted constant"));
        }
        ++i;  // closing quote
        out.push_back({TokKind::kQuoted, value, start});
      } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '@' || c == '$') {
        std::string value;
        while (i < n &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_' || text_[i] == '@' || text_[i] == '$' ||
                text_[i] == '\'')) {
          if (text_[i] == '\'') break;  // quote ends an identifier
          value += text_[i++];
        }
        out.push_back({TokKind::kIdent, value, start});
      } else {
        return Status::InvalidArgument(
            Where(start, std::string("unexpected character '") + c + "'"));
      }
    }
    out.push_back({TokKind::kEnd, "", n});
    return out;
  }

 private:
  std::string Where(size_t pos, const std::string& msg) const {
    return msg + " at offset " + std::to_string(pos);
  }

  std::string_view text_;
};

// Whether identifiers denote variables (formula context) or constants/nulls
// (instance context).
enum class TermContext { kFormula, kInstance };

// Per-parse cap on parsed terms: adversarial inputs (fuzzing, piped
// files) fail fast with InvalidArgument instead of building gigabyte
// token streams downstream.
constexpr size_t kMaxTerms = 1u << 16;

class TokenParser {
 public:
  TokenParser(std::vector<Token> tokens, TermContext context)
      : tokens_(std::move(tokens)), context_(context) {}

  const Token& Peek() const { return tokens_[pos_]; }
  // Never advances past the kEnd sentinel: callers that keep pulling
  // tokens after a truncated input see kEnd forever instead of reading
  // off the token vector.
  const Token& Next() {
    const Token& tok = tokens_[pos_];
    if (tok.kind != TokKind::kEnd) ++pos_;
    return tok;
  }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool Accept(TokKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokKind kind, const std::string& what) {
    if (!Accept(kind)) {
      return Status::InvalidArgument("expected " + what + " near '" +
                                     Peek().text + "' at offset " +
                                     std::to_string(Peek().pos));
    }
    return Status::Ok();
  }

  // A term in the current context.
  Result<Term> ParseTerm() {
    if (++num_terms_ > kMaxTerms) {
      return Status::InvalidArgument(
          "input exceeds " + std::to_string(kMaxTerms) + " terms");
    }
    const Token& tok = Next();
    if (tok.kind == TokKind::kQuoted) return Term::Constant(tok.text);
    if (tok.kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected a term, got '" + tok.text +
                                     "' at offset " +
                                     std::to_string(tok.pos));
    }
    if (context_ == TermContext::kFormula) {
      if (!tok.text.empty() && tok.text[0] == '_') {
        return Status::InvalidArgument(
            "nulls ('_' prefix) are not allowed in formulas: " + tok.text);
      }
      // Numeric literals are constants even in formulas.
      if (std::isdigit(static_cast<unsigned char>(tok.text[0]))) {
        return Term::Constant(tok.text);
      }
      return Term::Variable(tok.text);
    }
    // Instance context.
    if (!tok.text.empty() && tok.text[0] == '_') {
      auto it = nulls_.find(tok.text);
      if (it != nulls_.end()) return it->second;
      Term fresh = FreshNulls().Fresh();
      nulls_.emplace(tok.text, fresh);
      return fresh;
    }
    return Term::Constant(tok.text);
  }

  // "R(t1, ..., tk)".
  Result<Atom> ParseAtom() {
    const Token& name = Next();
    if (name.kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected a relation name, got '" +
                                     name.text + "' at offset " +
                                     std::to_string(name.pos));
    }
    Status status = Expect(TokKind::kLParen, "'('");
    if (!status.ok()) return status;
    std::vector<Term> args;
    if (!Accept(TokKind::kRParen)) {
      while (true) {
        Result<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        args.push_back(*term);
        if (Accept(TokKind::kRParen)) break;
        status = Expect(TokKind::kComma, "',' or ')'");
        if (!status.ok()) return status;
      }
    }
    // Arity consistency across the whole parse (one relation, one arity);
    // without this a mismatch surfaces only as a silent non-match deep in
    // homomorphism search.
    auto inserted = arities_.emplace(name.text, args.size());
    if (!inserted.second && inserted.first->second != args.size()) {
      return Status::InvalidArgument(
          "relation '" + name.text + "' used with arity " +
          std::to_string(args.size()) + " after arity " +
          std::to_string(inserted.first->second) + " at offset " +
          std::to_string(name.pos));
    }
    return Atom::Make(name.text, std::move(args));
  }

  // "A1, A2, ..., Ak" -- stops before a token that cannot start an atom.
  Result<std::vector<Atom>> ParseAtomList() {
    std::vector<Atom> atoms;
    while (true) {
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      atoms.push_back(*atom);
      if (!Accept(TokKind::kComma)) break;
    }
    return atoms;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  TermContext context_;
  std::unordered_map<std::string, Term> nulls_;
  std::unordered_map<std::string, size_t> arities_;
  size_t num_terms_ = 0;
};

Result<std::vector<Token>> Tokenize(std::string_view text) {
  return Lexer(text).Tokenize();
}

// Parses one tgd from `p`; stops at ';' or end.
Result<Tgd> ParseTgdFrom(TokenParser* p) {
  Result<std::vector<Atom>> body = p->ParseAtomList();
  if (!body.ok()) return body.status();
  Status status = p->Expect(TokKind::kArrow, "'->'");
  if (!status.ok()) return status;
  // Optional "exists v1, ..., vk :".
  if (p->Peek().kind == TokKind::kIdent &&
      (p->Peek().text == "exists" || p->Peek().text == "EXISTS")) {
    p->Next();
    while (true) {
      const Token& var = p->Next();
      if (var.kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected a variable after 'exists'");
      }
      if (!p->Accept(TokKind::kComma)) break;
    }
    status = p->Expect(TokKind::kColon, "':' after exists-list");
    if (!status.ok()) return status;
  }
  Result<std::vector<Atom>> head = p->ParseAtomList();
  if (!head.ok()) return head.status();
  return Tgd::Make(std::move(*body), std::move(*head));
}

}  // namespace

Result<Tgd> ParseTgd(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenParser p(std::move(*tokens), TermContext::kFormula);
  Result<Tgd> tgd = ParseTgdFrom(&p);
  if (!tgd.ok()) return tgd.status();
  p.Accept(TokKind::kSemicolon);
  if (!p.AtEnd()) {
    return Status::InvalidArgument("trailing input after tgd near '" +
                                   p.Peek().text + "'");
  }
  return tgd;
}

Result<DependencySet> ParseTgdSet(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenParser p(std::move(*tokens), TermContext::kFormula);
  DependencySet out;
  while (p.Accept(TokKind::kSemicolon)) {
  }
  while (!p.AtEnd()) {
    Result<Tgd> tgd = ParseTgdFrom(&p);
    if (!tgd.ok()) return tgd.status();
    out.Add(std::move(*tgd));
    if (!p.Accept(TokKind::kSemicolon) && !p.AtEnd()) {
      return Status::InvalidArgument("expected ';' between tgds near '" +
                                     p.Peek().text + "'");
    }
    while (p.Accept(TokKind::kSemicolon)) {
    }
  }
  return out;
}

Result<Instance> ParseInstance(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenParser p(std::move(*tokens), TermContext::kInstance);
  Instance out;
  bool braced = p.Accept(TokKind::kLBrace);
  if (braced && p.Accept(TokKind::kRBrace)) {
    if (!p.AtEnd()) {
      return Status::InvalidArgument("trailing input after instance");
    }
    return out;  // empty instance "{}"
  }
  if (!braced && p.AtEnd()) return out;  // empty text
  while (true) {
    Result<Atom> atom = p.ParseAtom();
    if (!atom.ok()) return atom.status();
    if (!atom->IsFact()) {
      return Status::Internal("instance atom contains variables");
    }
    out.Add(*atom);
    if (!p.Accept(TokKind::kComma)) break;
  }
  if (braced) {
    Status status = p.Expect(TokKind::kRBrace, "'}'");
    if (!status.ok()) return status;
  }
  if (!p.AtEnd()) {
    return Status::InvalidArgument("trailing input after instance near '" +
                                   p.Peek().text + "'");
  }
  return out;
}

namespace {

Result<ConjunctiveQuery> ParseQueryFrom(TokenParser* p) {
  std::vector<Term> free_vars;
  // Optional head: "Q(x, y)" or "(x, y)".
  if (p->Peek().kind == TokKind::kIdent ||
      p->Peek().kind == TokKind::kLParen) {
    if (p->Peek().kind == TokKind::kIdent) p->Next();  // query name
    Status status = p->Expect(TokKind::kLParen, "'(' in query head");
    if (!status.ok()) return status;
    if (!p->Accept(TokKind::kRParen)) {
      while (true) {
        Result<Term> term = p->ParseTerm();
        if (!term.ok()) return term.status();
        free_vars.push_back(*term);
        if (p->Accept(TokKind::kRParen)) break;
        status = p->Expect(TokKind::kComma, "',' or ')'");
        if (!status.ok()) return status;
      }
    }
  }
  Status status = p->Expect(TokKind::kTurnstile, "':-'");
  if (!status.ok()) return status;
  Result<std::vector<Atom>> body = p->ParseAtomList();
  if (!body.ok()) return body.status();
  return ConjunctiveQuery::Make(std::move(free_vars), std::move(*body));
}

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenParser p(std::move(*tokens), TermContext::kFormula);
  Result<ConjunctiveQuery> query = ParseQueryFrom(&p);
  if (!query.ok()) return query.status();
  if (!p.AtEnd()) {
    return Status::InvalidArgument("trailing input after query near '" +
                                   p.Peek().text + "'");
  }
  return query;
}

Result<UnionQuery> ParseUnionQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenParser p(std::move(*tokens), TermContext::kFormula);
  std::vector<ConjunctiveQuery> disjuncts;
  while (true) {
    Result<ConjunctiveQuery> query = ParseQueryFrom(&p);
    if (!query.ok()) return query.status();
    disjuncts.push_back(std::move(*query));
    if (!p.Accept(TokKind::kPipe)) break;
  }
  if (!p.AtEnd()) {
    return Status::InvalidArgument("trailing input after UCQ near '" +
                                   p.Peek().text + "'");
  }
  return UnionQuery::Make(std::move(disjuncts));
}

}  // namespace dxrec
