#include "logic/query.h"

#include <unordered_set>

namespace dxrec {

Result<ConjunctiveQuery> ConjunctiveQuery::Make(std::vector<Term> free_vars,
                                                std::vector<Atom> body) {
  if (body.empty()) {
    return Status::InvalidArgument("query body must be non-empty");
  }
  std::unordered_set<Term, TermHash> body_vars;
  for (const Atom& a : body) {
    for (Term t : a.args()) {
      if (t.is_variable()) body_vars.insert(t);
    }
  }
  for (Term v : free_vars) {
    if (!v.is_variable()) {
      return Status::InvalidArgument("free terms must be variables, got " +
                                     v.ToString());
    }
    if (body_vars.count(v) == 0) {
      return Status::InvalidArgument("free variable " + v.ToString() +
                                     " does not occur in the query body");
    }
  }
  ConjunctiveQuery q;
  q.free_vars_ = std::move(free_vars);
  q.body_ = std::move(body);
  return q;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "Q(";
  bool first = true;
  for (Term v : free_vars_) {
    if (!first) out += ", ";
    first = false;
    out += v.ToString();
  }
  out += ") :- ";
  first = true;
  for (const Atom& a : body_) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString();
  }
  return out;
}

Result<UnionQuery> UnionQuery::Make(
    std::vector<ConjunctiveQuery> disjuncts) {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("a UCQ needs at least one disjunct");
  }
  size_t arity = disjuncts[0].free_vars().size();
  for (const ConjunctiveQuery& cq : disjuncts) {
    if (cq.free_vars().size() != arity) {
      return Status::InvalidArgument(
          "all UCQ disjuncts must have the same arity");
    }
  }
  UnionQuery q;
  q.disjuncts_ = std::move(disjuncts);
  return q;
}

UnionQuery UnionQuery::Of(ConjunctiveQuery cq) {
  UnionQuery q;
  q.disjuncts_.push_back(std::move(cq));
  return q;
}

std::string UnionQuery::ToString() const {
  std::string out;
  bool first = true;
  for (const ConjunctiveQuery& cq : disjuncts_) {
    if (!first) out += "  UNION  ";
    first = false;
    out += cq.ToString();
  }
  return out;
}

}  // namespace dxrec
