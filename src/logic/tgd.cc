#include "logic/tgd.h"

#include <unordered_set>

#include "base/fresh.h"

namespace dxrec {

namespace {

// Variables of `atoms`, deduplicated, first-occurrence order.
std::vector<Term> VarsOf(const std::vector<Atom>& atoms) {
  std::vector<Term> out;
  std::unordered_set<Term, TermHash> seen;
  for (const Atom& a : atoms) {
    for (Term t : a.args()) {
      if (t.is_variable() && seen.insert(t).second) out.push_back(t);
    }
  }
  return out;
}

bool ContainsTerm(const std::vector<Term>& terms, Term t) {
  for (Term u : terms) {
    if (u == t) return true;
  }
  return false;
}

}  // namespace

Result<Tgd> Tgd::Make(std::vector<Atom> body, std::vector<Atom> head) {
  if (head.empty()) {
    return Status::InvalidArgument("tgd must have a non-empty head");
  }
  if (body.empty()) {
    return Status::InvalidArgument("tgd must have a non-empty body");
  }
  for (const Atom& a : body) {
    for (Term t : a.args()) {
      if (t.is_null()) {
        return Status::InvalidArgument("tgd atoms may not contain nulls: " +
                                       a.ToString());
      }
    }
  }
  for (const Atom& a : head) {
    for (Term t : a.args()) {
      if (t.is_null()) {
        return Status::InvalidArgument("tgd atoms may not contain nulls: " +
                                       a.ToString());
      }
    }
  }
  Tgd tgd;
  tgd.body_ = std::move(body);
  tgd.head_ = std::move(head);
  tgd.DeriveVariableClasses();
  return tgd;
}

void Tgd::DeriveVariableClasses() {
  body_vars_ = VarsOf(body_);
  head_vars_ = VarsOf(head_);
  frontier_.clear();
  body_only_.clear();
  head_existential_.clear();
  all_vars_.clear();
  for (Term v : body_vars_) {
    if (ContainsTerm(head_vars_, v)) {
      frontier_.push_back(v);
    } else {
      body_only_.push_back(v);
    }
    all_vars_.push_back(v);
  }
  for (Term v : head_vars_) {
    if (!ContainsTerm(body_vars_, v)) {
      head_existential_.push_back(v);
      all_vars_.push_back(v);
    }
  }
}

Tgd Tgd::Reverse() const {
  Tgd out;
  out.body_ = head_;
  out.head_ = body_;
  out.DeriveVariableClasses();
  return out;
}

Tgd Tgd::Apply(const Substitution& renaming) const {
  Tgd out;
  out.body_.reserve(body_.size());
  out.head_.reserve(head_.size());
  for (const Atom& a : body_) out.body_.push_back(a.Apply(renaming));
  for (const Atom& a : head_) out.head_.push_back(a.Apply(renaming));
  out.DeriveVariableClasses();
  return out;
}

Tgd Tgd::RenameApart(Substitution* out_renaming) const {
  Substitution renaming;
  for (Term v : all_vars_) {
    renaming.Set(v, FreshVariable(v.ToString()));
  }
  if (out_renaming != nullptr) *out_renaming = renaming;
  return Apply(renaming);
}

Instance Tgd::BodyInstance() const {
  Instance out;
  out.AddAll(body_);
  return out;
}

Instance Tgd::HeadInstance() const {
  Instance out;
  out.AddAll(head_);
  return out;
}

std::string Tgd::ToString() const {
  std::string out;
  bool first = true;
  for (const Atom& a : body_) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString();
  }
  out += " -> ";
  if (!head_existential_.empty()) {
    out += "exists ";
    first = true;
    for (Term v : head_existential_) {
      if (!first) out += ", ";
      first = false;
      out += v.ToString();
    }
    out += ": ";
  }
  first = true;
  for (const Atom& a : head_) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString();
  }
  return out;
}

}  // namespace dxrec
