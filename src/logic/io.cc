#include "logic/io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>
#include <vector>

#include "logic/parser.h"

namespace dxrec {

namespace {

bool NeedsQuoting(const std::string& name) {
  if (name.empty() || name[0] == '_') return true;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '@' && c != '$') {
      return true;
    }
  }
  return false;
}

// Renders a term for the instance context: constants bare when safe,
// quoted otherwise; nulls as "_N<label>".
std::string InstanceTerm(Term t) {
  if (t.is_null()) return t.ToString();
  std::string name = t.ToString();
  if (t.is_constant() && NeedsQuoting(name)) return "'" + name + "'";
  return name;
}

// Renders a term for the formula context: variables bare, constants
// always quoted (a bare identifier would re-parse as a variable).
std::string FormulaTerm(Term t) {
  if (t.is_constant()) return "'" + t.ToString() + "'";
  return t.ToString();
}

std::string RenderAtom(const Atom& atom,
                       const std::function<std::string(Term)>& term) {
  std::string out = RelationName(atom.relation()) + "(";
  for (uint32_t i = 0; i < atom.arity(); ++i) {
    if (i > 0) out += ", ";
    out += term(atom.arg(i));
  }
  out += ")";
  return out;
}

}  // namespace

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::InvalidArgument("I/O error reading " + path);
  }
  return buffer.str();
}

Status WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::InvalidArgument("I/O error writing " + path);
  }
  return Status::Ok();
}

Result<DependencySet> LoadTgdSetFile(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseTgdSet(*text);
}

Result<Instance> LoadInstanceFile(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseInstance(*text);
}

std::string SerializeInstance(const Instance& instance) {
  std::vector<Atom> sorted = instance.atoms();
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{\n";
  for (size_t i = 0; i < sorted.size(); ++i) {
    out += "  " + RenderAtom(sorted[i], InstanceTerm);
    if (i + 1 < sorted.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

Status SaveInstanceFile(const std::string& path,
                        const Instance& instance) {
  return WriteFile(path, SerializeInstance(instance));
}

std::string SerializeTgdSet(const DependencySet& sigma) {
  std::string out;
  for (const Tgd& tgd : sigma.tgds()) {
    bool first = true;
    for (const Atom& atom : tgd.body()) {
      if (!first) out += ", ";
      first = false;
      out += RenderAtom(atom, FormulaTerm);
    }
    out += " -> ";
    if (!tgd.head_existential_vars().empty()) {
      out += "exists ";
      first = true;
      for (Term v : tgd.head_existential_vars()) {
        if (!first) out += ", ";
        first = false;
        out += v.ToString();
      }
      out += ": ";
    }
    first = true;
    for (const Atom& atom : tgd.head()) {
      if (!first) out += ", ";
      first = false;
      out += RenderAtom(atom, FormulaTerm);
    }
    out += ";\n";
  }
  return out;
}

Status SaveTgdSetFile(const std::string& path, const DependencySet& sigma) {
  return WriteFile(path, SerializeTgdSet(sigma));
}

}  // namespace dxrec
