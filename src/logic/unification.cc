#include "logic/unification.h"

#include <cassert>

namespace dxrec {

namespace {

// Representative preference: frozen variables first (they name the class in
// generated constraints), then premise, then flexible; ties by term order.
int ClassPriority(VarClass cls) {
  switch (cls) {
    case VarClass::kFrozen:
      return 2;
    case VarClass::kPremise:
      return 1;
    case VarClass::kFlexible:
      return 0;
  }
  return 0;
}

}  // namespace

void Unifier::Declare(Term var, VarClass cls) {
  assert(var.is_variable());
  auto it = ids_.find(var);
  if (it != ids_.end()) {
    assert(nodes_[it->second].cls == cls &&
           "variable declared twice with different classes");
    return;
  }
  int id = static_cast<int>(nodes_.size());
  Node node;
  node.term = var;
  node.cls = cls;
  node.frozen_count = (cls == VarClass::kFrozen) ? 1 : 0;
  node.premise_count = (cls == VarClass::kPremise) ? 1 : 0;
  nodes_.push_back(node);
  ids_.emplace(var, id);
}

int Unifier::NodeFor(Term t) {
  auto it = ids_.find(t);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(nodes_.size());
  Node node;
  node.term = t;
  if (t.is_constant() || t.is_null()) {
    // Constants and nulls are rigid: the class is "bound" to them.
    node.constant = t;
  }
  nodes_.push_back(node);
  ids_.emplace(t, id);
  return id;
}

int Unifier::Find(int i) const {
  while (nodes_[i].parent != -1) {
    int parent = nodes_[i].parent;
    if (nodes_[parent].parent != -1) {
      nodes_[i].parent = nodes_[parent].parent;  // path halving
    }
    i = nodes_[i].parent;
  }
  return i;
}

bool Unifier::CheckClassInvariant(const Node& root) const {
  if (root.frozen_count == 0) return true;
  return root.frozen_count == 1 && !root.constant.is_valid() &&
         root.premise_count == 0;
}

bool Unifier::Unify(Term a, Term b) {
  if (failed_) return false;
  int ra = Find(NodeFor(a));
  int rb = Find(NodeFor(b));
  if (ra == rb) return true;

  Node& na = nodes_[ra];
  Node& nb = nodes_[rb];

  // Simulate the merged class summary and validate before committing.
  Term constant;
  if (na.constant.is_valid() && nb.constant.is_valid()) {
    if (na.constant != nb.constant) {
      failed_ = true;
      return false;
    }
    constant = na.constant;
  } else {
    constant = na.constant.is_valid() ? na.constant : nb.constant;
  }
  Node merged;
  merged.constant = constant;
  merged.frozen_count = na.frozen_count + nb.frozen_count;
  merged.premise_count = na.premise_count + nb.premise_count;
  if (!CheckClassInvariant(merged)) {
    failed_ = true;
    return false;
  }

  // Union by rank; keep the representative with the higher priority.
  int winner = ra, loser = rb;
  if (na.rank < nb.rank) {
    winner = rb;
    loser = ra;
  }
  Term rep_a = na.term, rep_b = nb.term;
  VarClass cls_a = na.cls, cls_b = nb.cls;
  Term rep = rep_a;
  if (ClassPriority(cls_b) > ClassPriority(cls_a) ||
      (ClassPriority(cls_b) == ClassPriority(cls_a) && rep_b < rep_a)) {
    rep = rep_b;
  }
  Node& w = nodes_[winner];
  Node& l = nodes_[loser];
  if (w.rank == l.rank) w.rank++;
  l.parent = winner;
  w.constant = merged.constant;
  w.frozen_count = merged.frozen_count;
  w.premise_count = merged.premise_count;
  // The root's `term`/`cls` describe the chosen representative.
  if (rep == rep_b) {
    w.term = rep_b;
    w.cls = cls_b;
  } else {
    w.term = rep_a;
    w.cls = cls_a;
  }
  return true;
}

bool Unifier::UnifyAtoms(const Atom& a, const Atom& b) {
  if (a.relation() != b.relation() || a.arity() != b.arity()) {
    return false;
  }
  for (uint32_t i = 0; i < a.arity(); ++i) {
    if (!Unify(a.arg(i), b.arg(i))) return false;
  }
  return true;
}

Term Unifier::Resolve(Term t) const {
  auto it = ids_.find(t);
  if (it == ids_.end()) return t;
  const Node& root = nodes_[Find(it->second)];
  if (root.constant.is_valid()) return root.constant;
  return root.term;
}

Substitution Unifier::ToSubstitution() const {
  Substitution out;
  for (const auto& [term, id] : ids_) {
    (void)id;
    if (!term.is_variable()) continue;
    Term rep = Resolve(term);
    if (rep != term) out.Set(term, rep);
  }
  return out;
}

}  // namespace dxrec
