#include "logic/printer.h"

#include "relational/instance_ops.h"

namespace dxrec {

std::string ToString(const AnswerTuple& tuple) {
  std::string out = "(";
  bool first = true;
  for (Term t : tuple) {
    if (!first) out += ", ";
    first = false;
    out += t.ToString();
  }
  out += ")";
  return out;
}

std::string ToString(const AnswerSet& answers) {
  std::string out = "{";
  bool first = true;
  for (const AnswerTuple& tuple : answers) {
    if (!first) out += ", ";
    first = false;
    out += ToString(tuple);
  }
  out += "}";
  return out;
}

std::string ToString(const std::vector<Instance>& instances) {
  std::string out;
  for (size_t i = 0; i < instances.size(); ++i) {
    out += "I" + std::to_string(i) + " = " +
           CanonicalString(instances[i]) + "\n";
  }
  return out;
}

}  // namespace dxrec
