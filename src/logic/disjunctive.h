// Disjunctive tgds and their possible-worlds chase.
//
// The maximum recovery and extended recovery mappings of Arenas et al.
// [8] and Fagin et al. [16] need disjunction in rule heads: the intro's
// eq. (5) is  S(x) -> R(x) v M(x).  This module provides the minimal
// disjunctive machinery to *reproduce the paper's comparison*: a
// DisjunctiveTgd carries one body and several alternative heads, and the
// disjunctive chase materializes one instance per choice function
// (picking an alternative per trigger) -- the possible recovered worlds
// of the mapping-based approach. The paper's drawback (3) is that some
// of these worlds are unsound (not recoveries); tests and bench E12
// quantify exactly that.
#ifndef DXREC_LOGIC_DISJUNCTIVE_H_
#define DXREC_LOGIC_DISJUNCTIVE_H_

#include <string>
#include <vector>

#include "base/fresh.h"
#include "base/status.h"
#include "logic/tgd.h"
#include "relational/instance.h"

namespace dxrec {

namespace resilience {
class ExecutionContext;
}  // namespace resilience

// body -> exists: head_1 v head_2 v ... v head_k (k >= 1).
class DisjunctiveTgd {
 public:
  DisjunctiveTgd() = default;

  // Alternatives must be non-empty atom sets; variables in alternatives
  // not occurring in the body are per-alternative existentials.
  static Result<DisjunctiveTgd> Make(
      std::vector<Atom> body, std::vector<std::vector<Atom>> alternatives);

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<std::vector<Atom>>& alternatives() const {
    return alternatives_;
  }
  size_t num_alternatives() const { return alternatives_.size(); }

  // "B(x) -> R(x) | M(x)".
  std::string ToString() const;

 private:
  std::vector<Atom> body_;
  std::vector<std::vector<Atom>> alternatives_;
};

// A set of disjunctive tgds (variables renamed apart on insertion).
class DisjunctiveMapping {
 public:
  size_t Add(DisjunctiveTgd tgd);
  size_t size() const { return tgds_.size(); }
  bool empty() const { return tgds_.empty(); }
  const DisjunctiveTgd& at(size_t i) const { return tgds_[i]; }
  const std::vector<DisjunctiveTgd>& tgds() const { return tgds_; }
  std::string ToString() const;

 private:
  std::vector<DisjunctiveTgd> tgds_;
  std::unordered_set<Term, TermHash> used_vars_;
};

struct DisjunctiveChaseOptions {
  // Cap on materialized worlds (the count is prod_t k_t over triggers).
  size_t max_worlds = 4096;
  // Optional deadline/cancellation, checked once per trigger expansion.
  // Not owned; must outlive the call.
  const resilience::ExecutionContext* context = nullptr;
};

// The possible worlds of chasing `input` with the disjunctive mapping:
// one instance per choice of alternative per trigger, deduplicated.
// Generated atoms only (as elsewhere in the library).
Result<std::vector<Instance>> DisjunctiveChase(
    const DisjunctiveMapping& mapping, const Instance& input,
    NullSource* nulls,
    const DisjunctiveChaseOptions& options = DisjunctiveChaseOptions());

}  // namespace dxrec

#endif  // DXREC_LOGIC_DISJUNCTIVE_H_
