#include "logic/dependency_set.h"

#include "base/fresh.h"

namespace dxrec {

TgdId DependencySet::Add(Tgd tgd) {
  // Rename any variable already used by an earlier tgd.
  Substitution renaming;
  for (Term v : tgd.all_vars()) {
    if (used_vars_.count(v) > 0) {
      renaming.Set(v, FreshVariable(v.ToString()));
    }
  }
  if (!renaming.empty()) tgd = tgd.Apply(renaming);
  for (Term v : tgd.all_vars()) used_vars_.insert(v);
  tgds_.push_back(std::move(tgd));
  return tgds_.size() - 1;
}

DependencySet DependencySet::Reverse() const {
  DependencySet out;
  for (const Tgd& tgd : tgds_) out.Add(tgd.Reverse());
  return out;
}

Result<MappingSchema> DependencySet::InferSchema() const {
  Schema source;
  Schema target;
  for (const Tgd& tgd : tgds_) {
    for (const Atom& a : tgd.body()) {
      auto result = source.AddRelation(RelationName(a.relation()),
                                       a.arity());
      if (!result.ok()) return result.status();
    }
    for (const Atom& a : tgd.head()) {
      auto result = target.AddRelation(RelationName(a.relation()),
                                       a.arity());
      if (!result.ok()) return result.status();
    }
  }
  MappingSchema schema(std::move(source), std::move(target));
  Status status = schema.Validate();
  if (!status.ok()) return status;
  return schema;
}

std::string DependencySet::ToString() const {
  std::string out;
  for (const Tgd& tgd : tgds_) {
    out += tgd.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace dxrec
