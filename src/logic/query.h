// Conjunctive queries and unions of conjunctive queries (paper, Sec. 2).
//
// A CQ  (x) :- exists y: alpha(x, y)  is stored as its free-variable tuple
// and body atoms; every body variable not free is existentially quantified.
// A UCQ shares one free-variable arity across disjuncts.
#ifndef DXREC_LOGIC_QUERY_H_
#define DXREC_LOGIC_QUERY_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "base/term.h"
#include "relational/tuple.h"

namespace dxrec {

class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  // Builds a CQ. Every free variable must occur in the body (safety);
  // free terms must be variables.
  static Result<ConjunctiveQuery> Make(std::vector<Term> free_vars,
                                       std::vector<Atom> body);

  const std::vector<Term>& free_vars() const { return free_vars_; }
  const std::vector<Atom>& body() const { return body_; }

  bool IsBoolean() const { return free_vars_.empty(); }

  // "Q(x) :- R(x, y)".
  std::string ToString() const;

 private:
  std::vector<Term> free_vars_;
  std::vector<Atom> body_;
};

class UnionQuery {
 public:
  UnionQuery() = default;

  // Builds a UCQ. All disjuncts must have the same number of free
  // variables, and there must be at least one disjunct.
  static Result<UnionQuery> Make(std::vector<ConjunctiveQuery> disjuncts);

  // Wraps a single CQ.
  static UnionQuery Of(ConjunctiveQuery cq);

  const std::vector<ConjunctiveQuery>& disjuncts() const {
    return disjuncts_;
  }
  size_t arity() const {
    return disjuncts_.empty() ? 0 : disjuncts_[0].free_vars().size();
  }
  bool IsBoolean() const { return arity() == 0; }

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace dxrec

#endif  // DXREC_LOGIC_QUERY_H_
