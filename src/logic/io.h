// File-level persistence for mappings and instances, in the same text
// language the parser reads (logic/parser.h). Serialized instances use
// explicit "_N<k>" null names, so save -> load round-trips preserve null
// identity within one file.
#ifndef DXREC_LOGIC_IO_H_
#define DXREC_LOGIC_IO_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "logic/dependency_set.h"
#include "relational/instance.h"

namespace dxrec {

// Reads an entire file; NotFound / InvalidArgument on failure.
Result<std::string> ReadFile(const std::string& path);
// Writes (truncating) `contents` to `path`.
Status WriteFile(const std::string& path, std::string_view contents);

// Loads a tgd set from a file (";"/newline separated, "#" comments).
Result<DependencySet> LoadTgdSetFile(const std::string& path);

// Loads an instance from a file ("{...}" or a bare atom list).
Result<Instance> LoadInstanceFile(const std::string& path);

// Serializes an instance in parseable form: sorted atoms, one per line,
// inside braces; nulls rendered as "_N<label>".
std::string SerializeInstance(const Instance& instance);

// Saves an instance so that LoadInstanceFile reads back an isomorphic
// (null-renamed) copy.
Status SaveInstanceFile(const std::string& path, const Instance& instance);

// Serializes a tgd set, one dependency per line terminated by ";".
std::string SerializeTgdSet(const DependencySet& sigma);

// Saves a tgd set so LoadTgdSetFile parses it back.
Status SaveTgdSetFile(const std::string& path, const DependencySet& sigma);

}  // namespace dxrec

#endif  // DXREC_LOGIC_IO_H_
