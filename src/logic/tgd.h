// Tuple-generating dependencies (paper, Sec. 2).
//
// A tgd  forall x,y: alpha(x, y) -> exists z: beta(x, z)  is stored as its
// body atom set alpha and head atom set beta; quantifiers are implicit.
// Variable classes are derived:
//   frontier   x:  occur in both body and head,
//   body-only  y:  universally quantified, body only,
//   head-existential z: existentially quantified, head only.
// A tgd is *full* when z is empty and *quasi-guarded* when y is empty.
// The reverse of a tgd swaps body and head:  beta(x, z) -> exists y
// alpha(x, y)  (paper eq. (8)); note the reverse of a quasi-guarded tgd is
// full.
#ifndef DXREC_LOGIC_TGD_H_
#define DXREC_LOGIC_TGD_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "base/substitution.h"
#include "base/term.h"
#include "relational/instance.h"
#include "relational/tuple.h"

namespace dxrec {

class Tgd {
 public:
  Tgd() = default;

  // Builds a tgd and derives variable classes. Fails if the head is empty
  // or any atom argument list is empty of sense (no relation).
  static Result<Tgd> Make(std::vector<Atom> body, std::vector<Atom> head);

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Atom>& head() const { return head_; }

  // Variable classes, each deduplicated, in first-occurrence order.
  const std::vector<Term>& frontier_vars() const { return frontier_; }
  const std::vector<Term>& body_only_vars() const { return body_only_; }
  const std::vector<Term>& head_existential_vars() const {
    return head_existential_;
  }
  // All head variables (frontier + head-existential), the domain of the
  // head-homomorphisms HOM(Sigma, J) of Sec. 4.
  const std::vector<Term>& head_vars() const { return head_vars_; }
  // All body variables (frontier + body-only).
  const std::vector<Term>& body_vars() const { return body_vars_; }
  // vars(xi): every variable of the tgd.
  const std::vector<Term>& all_vars() const { return all_vars_; }

  bool IsFull() const { return head_existential_.empty(); }
  bool IsQuasiGuarded() const { return body_only_.empty(); }

  // The reverse dependency beta -> exists alpha.
  Tgd Reverse() const;

  // A copy with every variable consistently replaced through `renaming`
  // (unmapped variables kept).
  Tgd Apply(const Substitution& renaming) const;

  // A copy whose variables are renamed to fresh ones; `out_renaming`
  // (optional) receives the old->new map.
  Tgd RenameApart(Substitution* out_renaming = nullptr) const;

  // The body/head atoms as an Instance (variables preserved).
  Instance BodyInstance() const;
  Instance HeadInstance() const;

  // "R(x, y) -> exists z: S(x, z)".
  std::string ToString() const;

 private:
  void DeriveVariableClasses();

  std::vector<Atom> body_;
  std::vector<Atom> head_;
  std::vector<Term> frontier_;
  std::vector<Term> body_only_;
  std::vector<Term> head_existential_;
  std::vector<Term> head_vars_;
  std::vector<Term> body_vars_;
  std::vector<Term> all_vars_;
};

}  // namespace dxrec

#endif  // DXREC_LOGIC_TGD_H_
