// Conjunctive-query containment, equivalence and minimization.
//
// Classic Chandra-Merkurio machinery on top of the homomorphism engine:
//   Q1 is contained in Q2  iff  the frozen head of Q1 is an answer of Q2
//   on Q1's canonical database (variables frozen to fresh constants).
// UCQ containment follows Sagiv-Yannakakis: each disjunct of the left
// query must be contained in some disjunct of the right one.
// Minimization computes the core of a CQ: the unique (up to renaming)
// equivalent query with the fewest atoms.
//
// These utilities support query-level reasoning around the recovery
// engine (e.g. recognizing that two probe queries are equivalent before
// paying for an exponential certain-answer computation).
#ifndef DXREC_LOGIC_QUERY_CONTAINMENT_H_
#define DXREC_LOGIC_QUERY_CONTAINMENT_H_

#include "logic/query.h"

namespace dxrec {

// Q(left) subseteq Q(right) on every instance. Arity must match.
bool IsContainedIn(const ConjunctiveQuery& left,
                   const ConjunctiveQuery& right);
bool IsContainedIn(const UnionQuery& left, const UnionQuery& right);

bool AreEquivalent(const ConjunctiveQuery& left,
                   const ConjunctiveQuery& right);
bool AreEquivalent(const UnionQuery& left, const UnionQuery& right);

// The minimal equivalent CQ (drop redundant body atoms).
ConjunctiveQuery Minimize(const ConjunctiveQuery& query);

// Minimizes every disjunct and drops disjuncts contained in another.
UnionQuery Minimize(const UnionQuery& query);

}  // namespace dxrec

#endif  // DXREC_LOGIC_QUERY_CONTAINMENT_H_
