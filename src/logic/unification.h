// Union-find unification with "frozen" variable classes.
//
// Definition 6 of the paper (minimal subsumant) requires the theta_i
// mappings of premise tgds to send each body-only variable to a *unique*
// variable: the images must stay pairwise distinct and may not be shared
// with any other premise variable's image (only the subsumed tgd's own
// variables may map onto them). The same discipline models the distinct
// fresh nulls a chase step invents, which the maximum-recovery
// reconstruction (core/max_recovery) also needs.
//
// Unifier captures this with three variable classes:
//   kFlexible  -- may merge with anything (the subsumed tgd's variables),
//   kPremise   -- premise head variables; may merge with anything except a
//                 frozen class,
//   kFrozen    -- body-only premise variables / fresh chase nulls; a class
//                 may contain at most one frozen variable, no constant, and
//                 no premise variable.
// Constants never merge with different constants.
#ifndef DXREC_LOGIC_UNIFICATION_H_
#define DXREC_LOGIC_UNIFICATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/substitution.h"
#include "base/term.h"
#include "relational/tuple.h"

namespace dxrec {

enum class VarClass : uint8_t {
  kFlexible = 0,
  kPremise = 1,
  kFrozen = 2,
};

class Unifier {
 public:
  Unifier() = default;

  // Declares a variable's class. Variables not declared default to
  // kFlexible on first use. Declaring twice with different classes is a
  // programming error (assert).
  void Declare(Term var, VarClass cls);

  // Unifies two terms; returns false (and marks the unifier failed) on a
  // class violation or constant clash. Constants are their own nodes.
  bool Unify(Term a, Term b);

  // Component-wise unification of two atoms. False if relations or arities
  // differ or any position fails.
  bool UnifyAtoms(const Atom& a, const Atom& b);

  bool failed() const { return failed_; }

  // The representative term of t's class: the constant if bound, else the
  // frozen variable if present, else the smallest declared variable by
  // Term order. Unseen terms resolve to themselves.
  Term Resolve(Term t) const;

  // The substitution mapping every seen variable to its representative.
  Substitution ToSubstitution() const;

 private:
  struct Node {
    Term term;
    VarClass cls = VarClass::kFlexible;
    int parent = -1;  // -1 = root
    int rank = 0;
    // Root-only class summary:
    Term constant;           // invalid if none
    int frozen_count = 0;    // frozen variables in class
    int premise_count = 0;   // premise variables in class
  };

  int NodeFor(Term t);
  int Find(int i) const;
  bool CheckClassInvariant(const Node& root) const;

  std::unordered_map<Term, int, TermHash> ids_;
  mutable std::vector<Node> nodes_;
  bool failed_ = false;
};

}  // namespace dxrec

#endif  // DXREC_LOGIC_UNIFICATION_H_
