// A small text language for dependencies, instances and queries, so that
// examples, tools and tests can be data-driven.
//
// Grammar sketch (see README for the full description):
//
//   tgd       :=  atoms "->" [ "exists" varlist ":" ] atoms
//   tgd set   :=  tgd (";" | newline) ...       ("#" starts a comment)
//   instance  :=  "{" atom ("," atom)* "}"  |  atom ("," atom)*
//   cq        :=  [Name] "(" varlist ")" ":-" atoms   |   ":-" atoms
//   ucq       :=  cq ("|" cq)*
//
// Term conventions:
//   - In dependencies and queries, bare identifiers are variables;
//     'quoted' identifiers and numeric literals are constants.
//   - In instances, bare identifiers and numbers are constants; identifiers
//     starting with "_" are labeled nulls (the same name denotes the same
//     null within one ParseInstance call).
#ifndef DXREC_LOGIC_PARSER_H_
#define DXREC_LOGIC_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "logic/dependency_set.h"
#include "logic/query.h"
#include "logic/tgd.h"
#include "relational/instance.h"

namespace dxrec {

// "R(x, y) -> exists z: S(x, z)".
Result<Tgd> ParseTgd(std::string_view text);

// Multiple tgds separated by ";" or newlines; "#" comments to end of line.
Result<DependencySet> ParseTgdSet(std::string_view text);

// "{S(a), P(b), T(_X)}" (braces optional).
Result<Instance> ParseInstance(std::string_view text);

// "Q(x) :- R(x, 'b')" or "(x) :- R(x, 'b')" or ":- R(x, y)" (Boolean).
Result<ConjunctiveQuery> ParseQuery(std::string_view text);

// Disjuncts separated by "|": "Q(x) :- R(x) | Q(x) :- M(x)".
Result<UnionQuery> ParseUnionQuery(std::string_view text);

}  // namespace dxrec

#endif  // DXREC_LOGIC_PARSER_H_
