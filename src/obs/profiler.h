// In-process sampling profiler over the live span tree.
//
// Every active `obs::Span` pushes its (static-storage) name onto a
// lock-free per-thread frame stack on construction and pops it on
// destruction — two relaxed/release stores, cheap enough to leave on
// whenever tracing is enabled. A background sampler thread periodically
// walks every registered frame stack and attributes the wall time since
// its previous tick to the sampled stacks (elapsed-weighted, so the
// attributed total tracks real wall time even when ticks jitter), per
// worker thread:
//
//   - folded-stack output (`t3;session;inverse_chase;chase 12345`) that
//     flamegraph.pl / speedscope consume directly;
//   - a per-phase table: self time (phase was the innermost frame),
//     total time (phase was anywhere on the stack), sample count, and —
//     via obs/alloc.h AllocScopes — allocated/peak heap bytes.
//
// Frame names are string literals, so a sampler reading a frame slot
// that a worker is concurrently popping sees a stale-but-valid pointer;
// the depth counter is published with release/acquire so no torn stacks
// are ever attributed. `Stop()` takes one final elapsed-weighted sample,
// which makes the profile meaningful even for runs shorter than the
// sampling interval.
#ifndef DXREC_OBS_PROFILER_H_
#define DXREC_OBS_PROFILER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dxrec {
namespace obs {

// One thread's live span stack, readable by the sampler without locks.
// Leaked on thread exit (the sampler may still hold a pointer); depth is
// back to 0 by then because spans are strictly scoped.
struct FrameStack {
  static constexpr size_t kMaxDepth = 64;
  uint32_t thread_id = 0;
  std::atomic<uint32_t> depth{0};
  std::atomic<const char*> frames[kMaxDepth] = {};
};

namespace internal {
inline std::atomic<bool> g_frames_enabled{false};
}  // namespace internal

// True while frame push/pop should run (set for the process lifetime the
// first time a Profiler starts; the stores are too cheap to warrant
// turning back off).
inline bool FramesEnabled() {
  return internal::g_frames_enabled.load(std::memory_order_relaxed);
}

// Called by Span's constructor/destructor. `name` must have static
// storage duration.
void PushFrame(const char* name);
void PopFrame();

// Innermost live frame name on the calling thread, or "" — used by
// obs/alloc.h to attribute allocation deltas to the enclosing phase.
const char* CurrentFrameName();

// Aggregated profile for one phase (frame name), across all threads.
struct PhaseProfile {
  std::string name;
  int64_t self_us = 0;      // sampled with this phase innermost
  int64_t total_us = 0;     // sampled with this phase anywhere on stack
  uint64_t samples = 0;     // ticks where this phase was innermost
  int64_t alloc_bytes = 0;  // from AllocScope, cumulative allocations
  int64_t peak_bytes = 0;   // from AllocScope, max single-scope peak
};

class Profiler {
 public:
  static Profiler& Global();

  // Starts the sampler thread (idempotent) and enables frame tracking.
  // interval_seconds <= 0 picks the 5 ms default.
  void Start(double interval_seconds = 0);
  // Joins the sampler after one final flush sample covering the time
  // since the last tick. Safe to call when not running.
  void Stop();
  bool running() const;

  // One sampling pass attributing `dt_us` across the live stacks; the
  // sampler thread calls this on its schedule, tests call it directly
  // for determinism.
  void SampleOnce(int64_t dt_us);

  // Folded-stack lines, one per (thread, stack): "t1;a;b <micros>\n".
  std::string FoldedStacks() const;

  // Per-phase table sorted by self time, descending.
  std::vector<PhaseProfile> PhaseTable() const;

  // Sum of attributed self time across all stacks (== wall time covered
  // by sampling, per thread summed).
  int64_t TotalSampledUs() const;

  // Called by AllocScope's destructor with the scope's phase attribution.
  void RecordAlloc(const char* phase, int64_t alloc_bytes,
                   int64_t peak_bytes);

  // Drops accumulated samples (not the registered stacks).
  void Clear();

 private:
  Profiler() = default;
  void Loop(double interval_seconds);

  using Clock = std::chrono::steady_clock;

  struct PhaseCell {
    int64_t self_us = 0;
    int64_t total_us = 0;
    uint64_t samples = 0;
    int64_t alloc_bytes = 0;
    int64_t peak_bytes = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, int64_t> folded_;  // "t<tid>;a;b" -> micros
  std::map<std::string, PhaseCell> phases_;
  int64_t total_sampled_us_ = 0;

  mutable std::mutex thread_mu_;
  std::thread sampler_;
  bool running_ = false;
  bool stop_requested_ = false;
  // Start of the not-yet-attributed interval. Set by Start(), advanced
  // by each sampler tick (under thread_mu_), consumed by Stop()'s final
  // flush — so the Start→Stop window is tiled exactly once even when the
  // sampler thread never gets scheduled before Stop.
  Clock::time_point last_tick_{};
  std::condition_variable cv_;
};

}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_PROFILER_H_
