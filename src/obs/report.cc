#include "obs/report.h"

#include <cstdio>
#include <map>

#include "obs/events.h"
#include "obs/profiler.h"
#include "obs/stats.h"
#include "resilience/degraded.h"

namespace dxrec {
namespace obs {

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  *out += JsonEscape(s);
  out->push_back('"');
}

}  // namespace

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::Ok();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    AppendJsonString(e.name, &out);
    out += ",\"cat\":";
    AppendJsonString(e.category, &out);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.thread_id) +
           ",\"ts\":" + std::to_string(e.start_us) +
           ",\"dur\":" + std::to_string(e.duration_us);
    out += ",\"args\":{\"span_id\":" + std::to_string(e.span_id) +
           ",\"parent_id\":" + std::to_string(e.parent_id);
    for (const auto& [key, value] : e.args) {
      out += ",";
      AppendJsonString(key, &out);
      out += ":" + std::to_string(value);
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(name, &out);
    out += ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(name, &out);
    out += ":" + std::to_string(value);
  }
  out += "},\"histograms\":[";
  first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(h.name, &out);
    out += ",\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"p50\":" + std::to_string(SnapshotValueAtQuantile(h, 0.50)) +
           ",\"p90\":" + std::to_string(SnapshotValueAtQuantile(h, 0.90)) +
           ",\"p99\":" + std::to_string(SnapshotValueAtQuantile(h, 0.99)) +
           ",\"p999\":" + std::to_string(SnapshotValueAtQuantile(h, 0.999)) +
           ",\"buckets\":[";
    bool first_bucket = true;
    for (const HistogramBucketSnapshot& bucket : h.buckets) {
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "{\"le\":" + std::to_string(bucket.ub) +
             ",\"count\":" + std::to_string(bucket.count) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::vector<SpanAggregate> AggregateSpans(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, SpanAggregate> by_name;
  for (const TraceEvent& e : events) {
    SpanAggregate& agg = by_name[e.name];
    agg.name = e.name;
    agg.count++;
    agg.total_us += e.duration_us;
    if (e.duration_us > agg.max_us) agg.max_us = e.duration_us;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  return out;
}

namespace {

// Baseline snapshot taken by the most recent MarkRunStart, if any.
std::mutex g_run_start_mu;
MetricsSnapshot* g_run_start = nullptr;

}  // namespace

void MarkRunStart() {
  MetricsSnapshot baseline = MetricsRegistry::Global().Read();
  std::lock_guard<std::mutex> lock(g_run_start_mu);
  if (g_run_start == nullptr) g_run_start = new MetricsSnapshot();  // leaked
  *g_run_start = std::move(baseline);
}

MetricsSnapshot RunMetricsDelta() {
  MetricsSnapshot end = MetricsRegistry::Global().Read();
  std::lock_guard<std::mutex> lock(g_run_start_mu);
  if (g_run_start == nullptr) return end;
  return DiffMetrics(*g_run_start, end);
}

std::string RunReportJson() {
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  std::string out = "{\"metrics\":";
  out += MetricsJson(RunMetricsDelta());
  out += ",\"spans\":[";
  bool first = true;
  for (const SpanAggregate& agg : AggregateSpans(events)) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    AppendJsonString(agg.name, &out);
    out += ",\"count\":" + std::to_string(agg.count) +
           ",\"total_us\":" + std::to_string(agg.total_us) +
           ",\"max_us\":" + std::to_string(agg.max_us) + "}";
  }
  out += "\n]";

  // Sampling-profiler per-phase table (empty array when never started).
  out += ",\"profile\":{\"total_sampled_us\":" +
         std::to_string(Profiler::Global().TotalSampledUs()) +
         ",\"phases\":[";
  first = true;
  for (const PhaseProfile& phase : Profiler::Global().PhaseTable()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    AppendJsonString(phase.name, &out);
    out += ",\"self_us\":" + std::to_string(phase.self_us) +
           ",\"total_us\":" + std::to_string(phase.total_us) +
           ",\"samples\":" + std::to_string(phase.samples) +
           ",\"alloc_bytes\":" + std::to_string(phase.alloc_bytes) +
           ",\"peak_bytes\":" + std::to_string(phase.peak_bytes) + "}";
  }
  out += "\n]}";

  // Event-sink accounting: totals plus per-type counts over the events
  // still in the ring.
  EventSink& sink = EventSink::Global();
  std::vector<Event> events_in_ring = sink.Snapshot();
  std::map<std::string, uint64_t> by_type;
  for (const Event& e : events_in_ring) by_type[e.type]++;
  out += ",\"events\":{\"recorded\":" + std::to_string(sink.recorded()) +
         ",\"dropped\":" + std::to_string(sink.dropped()) +
         ",\"capacity\":" + std::to_string(sink.capacity()) +
         ",\"by_type\":{";
  first = true;
  for (const auto& [type, count] : by_type) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(type, &out);
    out += ":" + std::to_string(count);
  }
  out += "}}";

  // Budget exhaustions, oldest first (bounded log; survives ring churn).
  out += ",\"budget_exhausted\":[";
  first = true;
  for (const BudgetInfo& info : BudgetLogSnapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"budget\":";
    AppendJsonString(info.budget, &out);
    out += ",\"limit\":" + std::to_string(info.limit) +
           ",\"consumed\":" + std::to_string(info.consumed) + ",\"phase\":";
    AppendJsonString(info.phase, &out);
    out += "}";
  }
  out += "\n]";

  // Degradation ladder outcomes, oldest first (bounded log; see
  // resilience/degraded.h).
  out += ",\"degradation\":[";
  first = true;
  for (const resilience::DegradationRecord& record :
       resilience::DegradationLogSnapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"operation\":";
    AppendJsonString(record.operation, &out);
    out += ",\"completeness\":";
    AppendJsonString(resilience::CompletenessName(record.completeness),
                     &out);
    out += ",\"rung\":";
    AppendJsonString(record.rung, &out);
    out += ",\"cause\":{\"budget\":";
    AppendJsonString(record.cause.budget, &out);
    out += ",\"limit\":" + std::to_string(record.cause.limit) +
           ",\"consumed\":" + std::to_string(record.cause.consumed) +
           ",\"phase\":";
    AppendJsonString(record.cause.phase, &out);
    out += "}}";
  }
  out += "\n]";

  // Access-path statistics: the last run's operator tree (obs/stats.h).
  out += ",\"stats\":" + stats::StatsJson();
  out += "}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  return WriteTextFile(path, ChromeTraceJson(Tracer::Global().Snapshot()));
}

Status WriteRunReport(const std::string& path) {
  return WriteTextFile(path, RunReportJson());
}

}  // namespace obs
}  // namespace dxrec
