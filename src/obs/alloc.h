// Per-phase heap accounting via a global operator new/delete override.
//
// When enabled (the profiler turns it on), every allocation updates
// plain thread-local counters: bytes allocated, bytes freed, live bytes,
// and the high-water mark of live bytes. Sizes come from
// malloc_usable_size so frees are accounted exactly without per-block
// headers. When disabled the override costs one relaxed atomic load per
// call.
//
// `AllocScope` brackets a phase on one thread: its destructor records
// the bytes allocated inside the scope and the peak of live bytes above
// the entry level into `<site>.alloc_bytes` / `<site>.peak_bytes`
// histograms and into the profiler's per-phase table (attributed to the
// innermost live span, aligning heap numbers with the flamegraph).
// Scopes nest: an inner scope's peak contributes to the outer one's.
#ifndef DXREC_OBS_ALLOC_H_
#define DXREC_OBS_ALLOC_H_

#include <atomic>
#include <cstdint>

namespace dxrec {
namespace obs {
namespace alloc {

namespace internal {
inline std::atomic<bool> g_alloc_enabled{false};
}  // namespace internal

inline bool Enabled() {
  return internal::g_alloc_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

// This thread's counters since tracking was enabled. Monotone except
// `live`/`peak_live`, which move with frees and AllocScope resets.
struct ThreadCounters {
  int64_t allocated = 0;  // total bytes ever allocated
  int64_t freed = 0;      // total bytes ever freed
  int64_t live = 0;       // allocated - freed
  int64_t peak_live = 0;  // high-water mark of live
};
ThreadCounters Snapshot();

// Forces the accounting TU (and its operator new override) to be linked
// into binaries that use the static library. Called from obs::Apply.
void EnsureLinked();

// RAII phase bracket. `site` must be a static-storage string; it names
// the histograms (`<site>.alloc_bytes`, `<site>.peak_bytes`).
class AllocScope {
 public:
  explicit AllocScope(const char* site);
  ~AllocScope();

  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;

  // Bytes allocated so far inside this scope (for tests).
  int64_t AllocatedSoFar() const;

 private:
  const char* site_;
  bool active_ = false;
  int64_t start_allocated_ = 0;
  int64_t start_live_ = 0;
  int64_t saved_peak_ = 0;  // enclosing scope's peak, restored on exit
};

}  // namespace alloc
}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_ALLOC_H_
