// Thread-safe registry of named counters, gauges and histograms.
//
// Instruments are created on first lookup and live for the process
// lifetime, so hot paths can cache the returned pointer in a
// function-local static and update it lock-free:
//
//   if (obs::Enabled()) {
//     static obs::Counter* fired =
//         obs::MetricsRegistry::Global().GetCounter("chase.triggers_fired");
//     fired->Add(triggers.size());
//   }
//
// Counters and gauges are single atomics. Histograms are HDR-style
// log-linear: values below 2^7 = 128 are recorded exactly (one bucket
// per value), larger values land in one of 64 linear sub-buckets per
// power-of-two octave, bounding the relative quantization error of any
// reported percentile by 1/128 < 1% (see ValueAtQuantile). Recording is
// one relaxed atomic add per cell and never takes a lock. Lookup by
// name takes the registry mutex (cold path only).
//
// Long-lived processes additionally get *windowed* views: MetricsWindow
// keeps a ring of timestamped cumulative snapshots (rotated by the JSONL
// snapshotter in obs/export.h, or manually), and DiffMetrics subtracts
// two snapshots so "the last N seconds" can be reported with rates and
// percentiles instead of process-lifetime totals.
#ifndef DXREC_OBS_METRICS_H_
#define DXREC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dxrec {
namespace obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written point-in-time value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Inclusive value range covered by one histogram bucket.
struct BucketBounds {
  uint64_t lb = 0;
  uint64_t ub = 0;
};

// Distribution of non-negative integer samples (sizes, microseconds)
// with accurate tail percentiles.
//
// Layout (HDR log-linear): bucket i = value i for i < 128 (exact), and
// for v >= 128 each power-of-two octave [2^e, 2^(e+1)) is split into 64
// linear sub-buckets of width 2^(e-6). Reported bucket values are range
// midpoints, so the relative error of any quantile is at most
// 1/(2*64) < 1%.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 7;            // exact below 128
  static constexpr uint64_t kExactLimit = 1u << kSubBucketBits;
  static constexpr size_t kSubBucketsPerOctave = kExactLimit / 2;  // 64
  // Octaves e = 7..63 after the exact region.
  static constexpr size_t kNumBuckets =
      kExactLimit + (64 - kSubBucketBits) * kSubBucketsPerOctave;

  // Maps a value to its bucket index (public for tests).
  static size_t BucketIndex(uint64_t value);
  // Inclusive [lb, ub] covered by bucket `index`.
  static BucketBounds BucketBoundsFor(size_t index);

  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  uint64_t BucketCount(size_t bucket) const;

  // Smallest recorded-range value v such that at least ceil(q * Count())
  // samples are <= its bucket; reported as the bucket midpoint (exact
  // below 128). q is clamped to [0, 1]; 0 with no samples.
  uint64_t ValueAtQuantile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// One non-empty bucket in a snapshot: inclusive bounds plus count.
struct HistogramBucketSnapshot {
  uint64_t lb = 0;
  uint64_t ub = 0;
  uint64_t count = 0;
};

// Read-only copy of one histogram, for reporting and diffing.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  // Non-empty buckets, ascending by bounds.
  std::vector<HistogramBucketSnapshot> buckets;
};

// Quantile over a snapshot's buckets (same contract as
// Histogram::ValueAtQuantile).
uint64_t SnapshotValueAtQuantile(const HistogramSnapshot& snapshot, double q);

// Read-only copy of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

// end - start, element-wise: counters and histogram buckets subtract
// (instruments appearing only in `end`, or reset since `start`, keep
// their end values), gauges are point-in-time so the end value wins, and
// a diffed histogram's max is the end max (a maximum cannot be
// un-observed). Both snapshots must come from the same registry.
MetricsSnapshot DiffMetrics(const MetricsSnapshot& start,
                            const MetricsSnapshot& end);

// Ring of timestamped cumulative snapshots for windowed queries. The
// caller supplies timestamps (seconds on any monotone clock), so tests
// can drive rotation deterministically; the JSONL snapshotter rotates
// the Global() window on its interval. Thread-safe.
class MetricsWindow {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit MetricsWindow(size_t capacity = kDefaultCapacity);

  // Shared window rotated by the periodic snapshotter (obs/export.h).
  static MetricsWindow& Global();

  // Appends one cumulative snapshot; the oldest falls off past capacity.
  void RotateWith(double t_seconds, MetricsSnapshot snapshot);
  // Convenience: snapshots the global registry.
  void Rotate(double t_seconds);

  // Delta between the newest rotation and the rotation whose age is
  // closest to `seconds` (so "last 10s" rounds to the nearest interval
  // boundary the ring still holds). *actual_seconds gets the achieved
  // span; rates are delta / actual_seconds. False with < 2 rotations.
  bool Window(double seconds, MetricsSnapshot* delta,
              double* actual_seconds) const;

  size_t size() const;
  void Clear();
  std::vector<std::pair<double, MetricsSnapshot>> Entries() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<std::pair<double, MetricsSnapshot>> ring_;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Find-or-create. Returned pointers are never invalidated.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Read() const;

  // Zeroes every instrument (pointers stay valid). For tests and for the
  // CLI's per-run reports.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_METRICS_H_
