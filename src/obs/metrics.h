// Thread-safe registry of named counters, gauges and histograms.
//
// Instruments are created on first lookup and live for the process
// lifetime, so hot paths can cache the returned pointer in a
// function-local static and update it lock-free:
//
//   if (obs::Enabled()) {
//     static obs::Counter* fired =
//         obs::MetricsRegistry::Global().GetCounter("chase.triggers_fired");
//     fired->Add(triggers.size());
//   }
//
// Counters and gauges are single atomics; histograms use power-of-two
// buckets with atomic cells, so recording never takes a lock. Lookup by
// name takes the registry mutex (cold path only).
#ifndef DXREC_OBS_METRICS_H_
#define DXREC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dxrec {
namespace obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written point-in-time value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Distribution of non-negative integer samples (sizes, microseconds).
// Bucket i holds samples whose bit width is i, i.e. value 0 goes to
// bucket 0 and v > 0 to bucket floor(log2(v)) + 1; bucket upper bounds
// are 0, 1, 3, 7, 15, ...
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  uint64_t BucketCount(size_t bucket) const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Read-only copy of one histogram, for reporting.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  // (upper bound, count) for non-empty buckets, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

// Read-only copy of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Find-or-create. Returned pointers are never invalidated.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Read() const;

  // Zeroes every instrument (pointers stay valid). For tests and for the
  // CLI's per-run reports.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_METRICS_H_
