#include "obs/alloc.h"

#include <algorithm>
#include <cstdlib>
#include <new>

#if __has_include(<malloc.h>)
#include <malloc.h>
#define DXREC_HAVE_MALLOC_USABLE_SIZE 1
#endif

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace dxrec {
namespace obs {
namespace alloc {

namespace {

// POD with constant initialization: safe to touch from operator new even
// during thread start-up and tear-down.
thread_local ThreadCounters t_counters;

int64_t UsableSize(void* ptr, size_t requested) {
#ifdef DXREC_HAVE_MALLOC_USABLE_SIZE
  return static_cast<int64_t>(malloc_usable_size(ptr));
#else
  (void)ptr;
  return static_cast<int64_t>(requested);
#endif
}

}  // namespace

void SetEnabled(bool enabled) {
  internal::g_alloc_enabled.store(enabled, std::memory_order_relaxed);
}

ThreadCounters Snapshot() { return t_counters; }

void EnsureLinked() {}

namespace internal2 {

void OnAlloc(void* ptr, size_t requested) {
  const int64_t bytes = UsableSize(ptr, requested);
  t_counters.allocated += bytes;
  t_counters.live += bytes;
  t_counters.peak_live = std::max(t_counters.peak_live, t_counters.live);
}

void OnFree(void* ptr, size_t requested) {
  const int64_t bytes = UsableSize(ptr, requested);
  t_counters.freed += bytes;
  t_counters.live -= bytes;
}

}  // namespace internal2

AllocScope::AllocScope(const char* site) : site_(site) {
  if (!Enabled()) return;
  active_ = true;
  start_allocated_ = t_counters.allocated;
  start_live_ = t_counters.live;
  // Give this scope its own high-water mark; the enclosing scope's is
  // restored (merged) on exit.
  saved_peak_ = t_counters.peak_live;
  t_counters.peak_live = t_counters.live;
}

AllocScope::~AllocScope() {
  if (!active_) return;
  const int64_t alloc_bytes = t_counters.allocated - start_allocated_;
  const int64_t peak_bytes =
      std::max<int64_t>(0, t_counters.peak_live - start_live_);
  t_counters.peak_live = std::max(saved_peak_, t_counters.peak_live);
  if (obs::Enabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetHistogram(std::string(site_) + ".alloc_bytes")
        ->Record(static_cast<uint64_t>(alloc_bytes));
    registry.GetHistogram(std::string(site_) + ".peak_bytes")
        ->Record(static_cast<uint64_t>(peak_bytes));
  }
  // Attribute to the innermost live span so heap numbers line up with
  // the flamegraph; fall back to the site label outside any span.
  const char* phase = FramesEnabled() ? CurrentFrameName() : "";
  if (phase[0] == '\0') phase = site_;
  Profiler::Global().RecordAlloc(phase, alloc_bytes, peak_bytes);
}

int64_t AllocScope::AllocatedSoFar() const {
  if (!active_) return 0;
  return t_counters.allocated - start_allocated_;
}

}  // namespace alloc
}  // namespace obs
}  // namespace dxrec

// Global operator new/delete overrides. Linked into any binary that pulls
// in this TU (obs::Apply calls EnsureLinked to guarantee that). With
// accounting disabled the overhead is one relaxed load per call.

namespace {

void* TrackedAlloc(size_t size) {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr != nullptr && dxrec::obs::alloc::Enabled()) {
    dxrec::obs::alloc::internal2::OnAlloc(ptr, size);
  }
  return ptr;
}

void* TrackedAllocAligned(size_t size, size_t alignment) {
  void* ptr = nullptr;
  if (posix_memalign(&ptr, std::max(alignment, sizeof(void*)),
                     size == 0 ? alignment : size) != 0) {
    return nullptr;
  }
  if (dxrec::obs::alloc::Enabled()) {
    dxrec::obs::alloc::internal2::OnAlloc(ptr, size);
  }
  return ptr;
}

void TrackedFree(void* ptr, size_t size) {
  if (ptr == nullptr) return;
  if (dxrec::obs::alloc::Enabled()) {
    dxrec::obs::alloc::internal2::OnFree(ptr, size);
  }
  std::free(ptr);
}

}  // namespace

void* operator new(size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new(size_t size, std::align_val_t alignment) {
  void* ptr = TrackedAllocAligned(size, static_cast<size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](size_t size, std::align_val_t alignment) {
  void* ptr = TrackedAllocAligned(size, static_cast<size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return TrackedAllocAligned(size, static_cast<size_t>(alignment));
}

void* operator new[](size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return TrackedAllocAligned(size, static_cast<size_t>(alignment));
}

void operator delete(void* ptr) noexcept { TrackedFree(ptr, 0); }
void operator delete[](void* ptr) noexcept { TrackedFree(ptr, 0); }
void operator delete(void* ptr, size_t size) noexcept {
  TrackedFree(ptr, size);
}
void operator delete[](void* ptr, size_t size) noexcept {
  TrackedFree(ptr, size);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr, 0);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr, 0);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  TrackedFree(ptr, 0);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  TrackedFree(ptr, 0);
}
void operator delete(void* ptr, size_t size, std::align_val_t) noexcept {
  TrackedFree(ptr, size);
}
void operator delete[](void* ptr, size_t size, std::align_val_t) noexcept {
  TrackedFree(ptr, size);
}
