// Machine-readable exports of the trace and metrics collectors.
//
// Two formats:
//   - Chrome trace-event JSON (`{"traceEvents": [...]}`) loadable in
//     chrome://tracing or https://ui.perfetto.dev: one complete ("ph":"X")
//     event per finished span, span args carried through.
//   - A run report: metrics snapshot (counters/gauges/histograms) plus a
//     per-span-name aggregate (count, total/max wall-time) so a single
//     file answers "where did the run spend its budget".
// The JSON schema is documented in docs/OBSERVABILITY.md.
#ifndef DXREC_OBS_REPORT_H_
#define DXREC_OBS_REPORT_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dxrec {
namespace obs {

// Escapes a string for inclusion inside a JSON string literal (quotes,
// backslashes, control characters).
std::string JsonEscape(const std::string& s);

// Writes `contents` to `path` (shared by the trace/report/event writers).
Status WriteTextFile(const std::string& path, const std::string& contents);

// Chrome trace-event JSON for the given events.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

// `{"counters": {...}, "gauges": {...}, "histograms": [...]}`.
std::string MetricsJson(const MetricsSnapshot& snapshot);

// Per-span-name aggregate over a trace.
struct SpanAggregate {
  std::string name;
  uint64_t count = 0;
  int64_t total_us = 0;
  int64_t max_us = 0;
};
std::vector<SpanAggregate> AggregateSpans(
    const std::vector<TraceEvent>& events);

// Marks the start of a run by snapshotting the registry. Report writers
// subtract this baseline, so run reports stay per-run even when one
// process reuses the lifetime-scoped instruments across several engine
// calls. Engine entry points call this when collection is enabled.
void MarkRunStart();

// Metrics accumulated since the last MarkRunStart (process lifetime when
// never marked).
MetricsSnapshot RunMetricsDelta();

// Full run report over the global collectors: per-run metrics (see
// MarkRunStart) with p50/p90/p99/p99.9 per histogram, span aggregates,
// the profiler's per-phase table when samples exist, event-sink
// accounting (recorded/dropped + per-type counts), and the
// budget-exhaustion log (name/limit/consumed/phase per occurrence).
std::string RunReportJson();

// File writers over the global collectors.
Status WriteChromeTrace(const std::string& path);
Status WriteRunReport(const std::string& path);

}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_REPORT_H_
