#include "obs/progress.h"

#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace dxrec {
namespace obs {

namespace {

// Pulse state shared between the hot loops and the heartbeat thread.
// All relaxed: the heartbeat reads an eventually-consistent snapshot.
std::atomic<uint64_t> g_work{0};
std::atomic<uint64_t> g_covers{0};
std::atomic<int64_t> g_budget_remaining{-1};
std::atomic<const char*> g_budget_name{""};
std::atomic<const char*> g_phase{""};

}  // namespace

void NoteWork(uint64_t units) {
  g_work.fetch_add(units, std::memory_order_relaxed);
}

void NoteCoverDone() {
  g_covers.fetch_add(1, std::memory_order_relaxed);
  g_work.fetch_add(1, std::memory_order_relaxed);
}

void NoteBudgetRemaining(const char* budget, uint64_t remaining) {
  g_budget_name.store(budget, std::memory_order_relaxed);
  g_budget_remaining.store(static_cast<int64_t>(remaining),
                           std::memory_order_relaxed);
}

void SetPhase(const char* phase) {
  g_phase.store(phase, std::memory_order_relaxed);
}

const char* CurrentPhase() {
  return g_phase.load(std::memory_order_relaxed);
}

ProgressMonitor& ProgressMonitor::Global() {
  static ProgressMonitor* monitor = new ProgressMonitor();
  return *monitor;
}

void ProgressMonitor::Configure(const ProgressOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  ConfigureLocked(options);
}

void ProgressMonitor::ConfigureLocked(const ProgressOptions& options) {
  options_ = options;
  started_at_ = std::chrono::steady_clock::now();
  last_change_ = started_at_;
  last_work_ = g_work.load(std::memory_order_relaxed);
  stall_reported_ = false;
}

bool ProgressMonitor::Start(const ProgressOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return false;
  ConfigureLocked(options);
  stop_requested_ = false;
  running_ = true;
  internal::g_progress_active.store(true, std::memory_order_relaxed);
  // Started under the lock: the new thread blocks on mu_ in Loop() until
  // we release, and a concurrent Start/Stop sees running_ already set.
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void ProgressMonitor::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    // Claim the thread under the lock so concurrent Stops cannot
    // double-join; the join itself happens outside it.
    worker = std::move(thread_);
  }
  internal::g_progress_active.store(false, std::memory_order_relaxed);
  cv_.notify_all();
  if (worker.joinable()) worker.join();
}

bool ProgressMonitor::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void ProgressMonitor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    auto interval = std::chrono::duration<double>(options_.interval_seconds);
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    TickOnce();
    lock.lock();
  }
}

void ProgressMonitor::TickOnce() {
  ProgressOptions options;
  std::chrono::steady_clock::time_point started_at;
  {
    std::lock_guard<std::mutex> lock(mu_);
    options = options_;
    started_at = started_at_;
  }
  auto now = std::chrono::steady_clock::now();
  uint64_t work = g_work.load(std::memory_order_relaxed);
  uint64_t covers = g_covers.load(std::memory_order_relaxed);
  int64_t budget_remaining = g_budget_remaining.load(std::memory_order_relaxed);
  const char* budget_name = g_budget_name.load(std::memory_order_relaxed);
  const char* phase = CurrentPhase();
  double elapsed =
      std::chrono::duration<double>(now - started_at).count();

  ticks_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* ticks = registry.GetCounter("progress.ticks");
  static Gauge* work_gauge = registry.GetGauge("progress.work");
  static Gauge* covers_gauge = registry.GetGauge("progress.covers_explored");
  static Gauge* budget_gauge = registry.GetGauge("progress.budget_remaining");
  ticks->Add(1);
  work_gauge->Set(static_cast<int64_t>(work));
  covers_gauge->Set(static_cast<int64_t>(covers));
  budget_gauge->Set(budget_remaining);

  if (EventsEnabled()) {
    Emit("progress.heartbeat",
         {{"work", static_cast<int64_t>(work)},
          {"covers", static_cast<int64_t>(covers)},
          {"budget_remaining", budget_remaining}},
         {{"phase", phase}});
  }

  // Stall watchdog: no forward-progress pulse since the last change for
  // stall_seconds or more. Reported once per episode.
  bool stalled = false;
  double stalled_for = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (work != last_work_) {
      last_work_ = work;
      last_change_ = now;
      stall_reported_ = false;
    } else {
      stalled_for = std::chrono::duration<double>(now - last_change_).count();
      if (stalled_for >= options.stall_seconds && !stall_reported_) {
        stall_reported_ = true;
        stalled = true;
      }
    }
  }
  if (stalled) {
    static Counter* stalls = registry.GetCounter("progress.stalls");
    stalls->Add(1);
    if (EventsEnabled()) {
      Emit("watchdog.stall",
           {{"stalled_ms", static_cast<int64_t>(stalled_for * 1e3)},
            {"work", static_cast<int64_t>(work)}},
           {{"phase", phase}});
    }
  }

  // One sample feeds every sink: the stderr one-liner goes through the
  // same Exporter interface (and the same values) as any registered
  // exporter, so `--progress` and `--openmetrics` cannot disagree.
  HeartbeatSample sample;
  sample.phase = phase;
  sample.work = work;
  sample.covers = covers;
  sample.budget_name = budget_name;
  sample.budget_remaining = budget_remaining;
  sample.elapsed_seconds = elapsed;
  sample.stalled = stalled;
  sample.stalled_seconds = stalled_for;
  if (options.stderr_status) {
    static StderrHeartbeatExporter* stderr_exporter =
        new StderrHeartbeatExporter();  // leaked
    stderr_exporter->ExportHeartbeat(sample);
  }
  ExporterRegistry::Global().EmitHeartbeat(sample);
}

ProgressScope::ProgressScope(double interval_seconds, bool stderr_status) {
  if (interval_seconds <= 0) return;
  ProgressOptions options;
  options.interval_seconds = interval_seconds;
  options.stderr_status = stderr_status;
  owns_ = ProgressMonitor::Global().Start(options);
}

ProgressScope::~ProgressScope() {
  if (owns_) ProgressMonitor::Global().Stop();
}

}  // namespace obs
}  // namespace dxrec
