// Live progress reporting and stall detection for long exponential runs
// (see docs/OBSERVABILITY.md, "Progress & watchdog").
//
// A production-scale Chase^{-1} run can legitimately sit inside cover
// enumeration or g-homomorphism search for minutes. The progress layer
// makes that visible while it happens:
//
//   - hot loops pulse NoteWork()/NoteCoverDone() (relaxed atomic adds)
//     and the pipeline labels itself with SetPhase();
//   - a background heartbeat thread (ProgressMonitor) periodically
//     snapshots work done / covers explored / budget remaining / current
//     phase into a one-line stderr status, the `progress.*` gauge family,
//     and a `progress.heartbeat` event;
//   - a stall watchdog fires a `watchdog.stall` event (plus a stderr
//     warning and the `progress.stalls` counter) when no forward progress
//     is observed for `stall_seconds`, once per stall episode.
//
// Disabled cost: pulse sites are guarded by one relaxed atomic load
// (`obs::ProgressActive()`); nothing else runs without Start().
#ifndef DXREC_OBS_PROGRESS_H_
#define DXREC_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace dxrec {
namespace obs {

namespace internal {
inline std::atomic<bool> g_progress_active{false};
}  // namespace internal

// True while a ProgressMonitor is started. Guard pulse call sites:
//   if (obs::ProgressActive()) obs::NoteWork(n);
inline bool ProgressActive() {
  return internal::g_progress_active.load(std::memory_order_relaxed);
}

// Forward-progress pulses (relaxed atomic adds; safe from any thread).
void NoteWork(uint64_t units);
void NoteCoverDone();
// Remaining units of the most recently ticking budget (heartbeat hint).
// `budget` must be a static-storage string.
void NoteBudgetRemaining(const char* budget, uint64_t remaining);
// Current pipeline phase label; `phase` must be a static-storage string.
void SetPhase(const char* phase);
const char* CurrentPhase();

struct ProgressOptions {
  // Heartbeat period.
  double interval_seconds = 1.0;
  // Fire the watchdog after this long without a NoteWork/NoteCoverDone
  // pulse. <= 0 treats every heartbeat without progress as a stall.
  double stall_seconds = 10.0;
  // Write the one-line status to stderr on each heartbeat.
  bool stderr_status = true;
};

// The background ticker. One global instance; Start/Stop are idempotent
// and safe to call concurrently (Stop moves the thread out under the
// lock, so two racing Stops never double-join).
class ProgressMonitor {
 public:
  static ProgressMonitor& Global();

  // Applies options without starting the thread (used by tests driving
  // TickOnce directly).
  void Configure(const ProgressOptions& options);

  // True when this call started the monitor; false when it was already
  // running (the earlier owner keeps it).
  bool Start(const ProgressOptions& options = ProgressOptions());
  void Stop();
  bool running() const;

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  // Runs one heartbeat inline on the calling thread (gauges, events,
  // optional stderr line, watchdog check). The background thread calls
  // this on its schedule; tests call it directly for determinism.
  void TickOnce();

 private:
  ProgressMonitor() = default;
  void Loop();
  void ConfigureLocked(const ProgressOptions& options);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
  ProgressOptions options_;
  std::chrono::steady_clock::time_point started_at_;

  std::atomic<uint64_t> ticks_{0};
  // Watchdog bookkeeping (mutated under mu_ by TickOnce).
  uint64_t last_work_ = 0;
  std::chrono::steady_clock::time_point last_change_;
  bool stall_reported_ = false;
};

// Per-call heartbeat ownership. Starts the global monitor when
// `interval_seconds > 0` and it is not already running; the destructor
// stops it only if this scope started it. Engine entry points hold one of
// these so the background thread is joined on *every* return path —
// success or early error — before the Status reaches the caller (no
// stderr heartbeat can fire after the result is delivered), and so a
// per-call heartbeat nests harmlessly under a session-wide monitor.
class ProgressScope {
 public:
  ProgressScope() = default;
  ProgressScope(double interval_seconds, bool stderr_status);
  ~ProgressScope();

  ProgressScope(const ProgressScope&) = delete;
  ProgressScope& operator=(const ProgressScope&) = delete;

  bool owns() const { return owns_; }

 private:
  bool owns_ = false;
};

}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_PROGRESS_H_
