// Pluggable telemetry sinks over the obs collectors.
//
// `Exporter` is the sink interface: it receives periodic metric
// snapshots (cumulative plus an optional windowed delta) and progress
// heartbeats. Implementations here:
//
//   - OpenMetricsText / WriteOpenMetrics: OpenMetrics v1 text exposition
//     of a MetricsSnapshot (counters as `_total`, gauges, histograms
//     with cumulative `le` buckets, `# EOF` terminator) — what a scrape
//     endpoint or `dxrec_cli --openmetrics` serves;
//   - JsonlSnapshotExporter: appends one JSON line per snapshot to a
//     file (the flight-data companion to the one-shot run report);
//   - StderrHeartbeatExporter: the `--progress` one-liner, fed by
//     ProgressMonitor through the same interface as every other sink so
//     stderr and scrape output can never disagree on values.
//
// `Snapshotter` is the periodic driver: every interval it rotates
// MetricsWindow::Global() and fans the cumulative + windowed snapshots
// out to every registered exporter. Tests call TickOnce(t) directly.
#ifndef DXREC_OBS_EXPORT_H_
#define DXREC_OBS_EXPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"

namespace dxrec {
namespace obs {

// One progress heartbeat, as sampled by ProgressMonitor::TickOnce.
struct HeartbeatSample {
  const char* phase = "";
  uint64_t work = 0;
  uint64_t covers = 0;
  const char* budget_name = "";
  int64_t budget_remaining = -1;
  double elapsed_seconds = 0;
  // Watchdog: set on the tick that first detects a stall episode.
  bool stalled = false;
  double stalled_seconds = 0;
};

class Exporter {
 public:
  virtual ~Exporter() = default;

  // Periodic metrics push. `window` is the delta over the last
  // `window_seconds` (null when the ring has fewer than two rotations).
  virtual void ExportMetrics(double t_seconds,
                             const MetricsSnapshot& cumulative,
                             const MetricsSnapshot* window,
                             double window_seconds) {
    (void)t_seconds;
    (void)cumulative;
    (void)window;
    (void)window_seconds;
  }

  // Progress heartbeat (one per ProgressMonitor tick).
  virtual void ExportHeartbeat(const HeartbeatSample& sample) {
    (void)sample;
  }
};

// Process-global fan-out point. Sinks are shared_ptrs so removal is safe
// while another thread is mid-emit (the emitting thread keeps its copy
// alive).
class ExporterRegistry {
 public:
  static ExporterRegistry& Global();

  void Add(std::shared_ptr<Exporter> exporter);
  void Remove(const Exporter* exporter);
  size_t size() const;

  void EmitMetrics(double t_seconds, const MetricsSnapshot& cumulative,
                   const MetricsSnapshot* window, double window_seconds);
  void EmitHeartbeat(const HeartbeatSample& sample);

 private:
  ExporterRegistry() = default;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Exporter>> exporters_;
};

// `chase.triggers_fired` -> `dxrec_chase_triggers_fired` (prefix, dots
// and other invalid characters to underscores).
std::string SanitizeMetricName(const std::string& name);

// OpenMetrics v1 text exposition, `# EOF`-terminated. When `window` is
// non-null its histograms/counters are additionally exported as
// `<name>_window` families with a `window_seconds` annotation gauge.
std::string OpenMetricsText(const MetricsSnapshot& snapshot,
                            const MetricsSnapshot* window = nullptr,
                            double window_seconds = 0);

Status WriteOpenMetrics(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const MetricsSnapshot* window = nullptr,
                        double window_seconds = 0);

// Appends `{"t":..,"metrics":{..},"window":{..},"window_seconds":..}`
// lines to `path` on every ExportMetrics.
class JsonlSnapshotExporter : public Exporter {
 public:
  explicit JsonlSnapshotExporter(std::string path);

  void ExportMetrics(double t_seconds, const MetricsSnapshot& cumulative,
                     const MetricsSnapshot* window,
                     double window_seconds) override;

  uint64_t lines_written() const;
  const Status& last_status() const { return status_; }

 private:
  std::string path_;
  mutable std::mutex mu_;
  uint64_t lines_ = 0;
  Status status_ = Status::Ok();
};

// The `--progress` stderr one-liner (plus the watchdog warning), moved
// behind the Exporter interface.
class StderrHeartbeatExporter : public Exporter {
 public:
  void ExportHeartbeat(const HeartbeatSample& sample) override;
};

// Background driver: rotates the global MetricsWindow and fans snapshots
// out to the ExporterRegistry every `interval_seconds`. One global
// instance; Start/Stop idempotent, mirroring ProgressMonitor.
class Snapshotter {
 public:
  static Snapshotter& Global();

  // True when this call started it (false: already running).
  bool Start(double interval_seconds);
  void Stop();
  bool running() const;

  // One rotation + fan-out at logical time `t_seconds`; the background
  // thread calls this on its schedule, tests call it directly.
  void TickOnce(double t_seconds);

  uint64_t ticks() const;

 private:
  Snapshotter() = default;
  void Loop(double interval_seconds);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::atomic<uint64_t> ticks_{0};
};

// Refreshes registry gauges derived from other collectors (currently the
// event sink: `events.recorded` / `events.dropped`) so exports carry
// them. Called by Snapshotter::TickOnce and the report writer.
void UpdateDerivedGauges();

}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_EXPORT_H_
