// Access-path statistics: per-relation / per-phase work attribution over
// the inverse chase (EXPLAIN ANALYZE for pipeline steps 1-7).
//
// Where the span tree (obs/trace.h) says *where time goes*, this subsystem
// says *why*: how many tuples each relation scan touched, how wide
// hom-search candidate fan-out got, how selective chase-trigger matching
// was. Those are exactly the numbers that justify — and then score — the
// columnar/indexed evaluation refactor (ROADMAP item 1).
//
// Collection contract mirrors obs::Enabled(): one relaxed atomic load on
// the disabled path. Hot paths (the hom-search matcher) sample the gate
// once per search and thereafter pay plain integer increments into
// search-local structs, which are merged into a thread-local sink at
// search end. Per-cover rollups are merged index-ordered by the engine so
// `threads=N` output is byte-identical to sequential (the determinism
// contract of docs/PARALLELISM.md extends to these counters on complete,
// non-truncated searches).
//
// The aggregated result of one engine run is a RunStats operator tree:
//
//   run
//   ├── step 1  hom enumeration        (SearchStats, per-relation access)
//   └── cover k                        (CoverStats, index-ordered)
//       ├── step 4  reverse chase      (ChaseStats: per-dependency firings)
//       ├── step 5  forward chase      (ChaseStats: tested vs fired, deltas)
//       ├── step 6  g-hom search       (SearchStats: candidate fan-out)
//       └── step 7  verify             (SearchStats, slice-merged)
//
// exposed three ways: a "stats" section in the JSON run report
// (obs/report.h), `stats.*` OpenMetrics families through the exporter
// registry (lazily created, so a stats-off process exports none), and the
// CLI's `explain analyze` rendering (RenderExplainAnalyze).
#ifndef DXREC_OBS_STATS_H_
#define DXREC_OBS_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dxrec {
namespace obs {
namespace stats {

namespace internal {
inline std::atomic<bool> g_stats_enabled{false};
}  // namespace internal

// Gate for all access-path accounting. Independent of obs::Enabled():
// stats can run without spans and vice versa. Reading is one relaxed
// load, cheap enough for inner loops.
inline bool Enabled() {
  return internal::g_stats_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

// Work done against one relation's tuple lists during matching.
//   lists          candidate lists acquired (AtomsFor / AtomsWith calls)
//   indexed_lists  how many of those came from a position index probe
//   tuples_scanned candidates pulled from those lists (fan-out)
//   tuples_matched candidates that unified with the pattern atom
struct RelationAccess {
  uint64_t lists = 0;
  uint64_t indexed_lists = 0;
  uint64_t tuples_scanned = 0;
  uint64_t tuples_matched = 0;

  void Merge(const RelationAccess& other);
  // matched / scanned in [0, 1]; 0 when nothing was scanned.
  double Selectivity() const;
};

// One (or several merged) homomorphism searches. Relation keys are the
// globally interned RelationId values (relational/schema.h), kept as
// uint32_t here so obs/ stays header-independent of relational/.
struct SearchStats {
  uint64_t searches = 0;
  // How many of those searches ran against the columnar layout
  // (relational/columnar.h). The explain-analyze rendering derives a
  // row/col/mix tag from this, so the operator tree says which physical
  // layout served each phase.
  uint64_t columnar_searches = 0;
  uint64_t candidates_tried = 0;
  uint64_t backtracks = 0;
  uint64_t results = 0;
  uint64_t truncated = 0;  // searches cut off by max_results
  std::map<uint32_t, RelationAccess> relations;

  void Merge(const SearchStats& other);
  // Sum of all per-relation access rows.
  RelationAccess Totals() const;
};

// Trigger work attributed to one dependency (tgd) of a chase.
struct DependencyStats {
  uint64_t triggers_tested = 0;  // body homomorphisms found
  uint64_t triggers_fired = 0;   // of those, fired (head not yet satisfied)
  uint64_t tuples_added = 0;     // atoms the firings appended
  SearchStats match;             // the body-matching searches themselves

  void Merge(const DependencyStats& other);
};

// One chase run: per-dependency trigger attribution plus per-round
// semi-naive-readiness deltas (tuples added per round — the `delta`
// a semi-naive evaluator would match against; see ROADMAP item 1).
struct ChaseStats {
  uint64_t rounds = 0;
  uint64_t tuples_added = 0;
  std::vector<uint64_t> round_deltas;
  std::vector<DependencyStats> deps;  // indexed by TgdId

  void EnsureDeps(size_t n);
  void Merge(const ChaseStats& other);
};

// Rollup for one cover (pipeline steps 4-7). Produced on whatever pool
// thread processed the cover; merged into RunStats in cover-index order.
struct CoverStats {
  uint64_t cover_index = 0;
  uint64_t cover_size = 0;    // homs in the cover
  bool passed_sub = false;    // survived the SUB(Sigma) filter (step 3')
  ChaseStats reverse_chase;   // step 4
  ChaseStats forward_chase;   // step 5
  SearchStats g_hom;          // step 6
  SearchStats verify;         // step 7, merged in slice order
  uint64_t source_atoms = 0;  // |K| after the reverse chase
  uint64_t chased_atoms = 0;  // |chase(K)|
  uint64_t g_homs = 0;        // candidate g's found in step 6
  uint64_t emitted = 0;       // recoveries emitted by this cover
  uint64_t rejected = 0;      // candidates rejected in step 7
  // Wall time per phase (from the cover's phase stopwatches, which also
  // feed the span tree). Excluded from the deterministic rendering.
  double seconds_reverse = 0;
  double seconds_forward = 0;
  double seconds_ghom = 0;
  double seconds_verify = 0;
  // Bytes allocated on the cover's thread while processing it (0 unless
  // obs::alloc is enabled). Excluded from the deterministic rendering.
  uint64_t alloc_bytes = 0;
};

// The per-run operator tree.
struct RunStats {
  bool valid = false;  // false: stats were disabled during the run
  // InstanceLayoutName() of the layout the run was configured with
  // ("row" / "columnar"); empty for pre-layout snapshots.
  std::string layout;
  uint64_t target_atoms = 0;
  uint64_t sub_constraints = 0;
  SearchStats hom_enum;  // step 1: ComputeHomSet
  uint64_t num_homs = 0;
  uint64_t num_covers = 0;
  uint64_t num_covers_passing_sub = 0;
  std::vector<CoverStats> covers;  // cover-index order
  uint64_t recoveries = 0;
  double seconds_total = 0;

  // Whole-run per-relation access rows: hom_enum + every cover's chase
  // matching, g-hom and verify searches, merged per relation.
  std::map<uint32_t, RelationAccess> AggregateRelations() const;
};

// ---------------------------------------------------------------------------
// Thread-local sinks. Instrumented code records into whatever sink is
// installed on its thread; RAII installers scope attribution to a phase.
// An inner scope shadows the outer one (a chase's per-dependency match
// stats are not double-counted into the enclosing cover phase).
// Constructing with nullptr is a no-op (keeps the current sink).

SearchStats* CurrentSearchSink();
ChaseStats* CurrentChaseSink();

class ScopedSearch {
 public:
  explicit ScopedSearch(SearchStats* target);
  ~ScopedSearch();
  ScopedSearch(const ScopedSearch&) = delete;
  ScopedSearch& operator=(const ScopedSearch&) = delete;

 private:
  bool installed_ = false;
  SearchStats* prev_ = nullptr;
};

class ScopedChase {
 public:
  explicit ScopedChase(ChaseStats* target);
  ~ScopedChase();
  ScopedChase(const ScopedChase&) = delete;
  ScopedChase& operator=(const ScopedChase&) = delete;

 private:
  bool installed_ = false;
  ChaseStats* prev_ = nullptr;
};

// ---------------------------------------------------------------------------
// Recording entry points (all no-ops unless Enabled()).

// Called once per finished logical search (sequential run, or the merged
// aggregate of a chunked parallel search): merges into the thread's
// search sink and flushes `stats.search.*` registry counters.
void RecordSearch(const SearchStats& search);

// Instance access-path counters (`stats.instance.*`). Out-of-line so the
// hot path pays only the Enabled() branch when disabled.
void NoteFullScan();
void NoteIndexProbe();

// Chase round flush (`stats.chase.*` registry counters).
void NoteChaseRound(uint64_t triggers_tested, uint64_t triggers_fired,
                    uint64_t tuples_added);

// CQ evaluation counters (`stats.eval.*`).
void NoteEvaluation(uint64_t answers);

// ---------------------------------------------------------------------------
// Last-run snapshot (set by RunInverseChase when Enabled()).

void SetLastRun(RunStats run);
// Copies the most recent run's stats into *out. False if no run has been
// recorded since process start (or since stats were enabled).
bool LastRun(RunStats* out);

// Flushes run-level rollups (`stats.run.*`) to the metrics registry.
void FlushRunToMetrics(const RunStats& run);

// ---------------------------------------------------------------------------
// Rendering.

// JSON object for the run report's "stats" section: {"enabled":...} plus
// the full operator tree of the last run when one exists.
std::string StatsJson();

// Deterministic text rendering of the operator tree (util/table.h):
// run summary, whole-run per-relation selectivity table, and the
// cover -> chase rounds -> dependency triggers / per-search fan-out tree.
// With include_timing, phase rows gain wall-time ms and covers gain
// alloc bytes — timing output is *not* byte-stable across runs, which is
// why it is opt-in (`explain analyze timing`), mirroring EXPLAIN
// (ANALYZE, TIMING OFF) practice.
std::string RenderExplainAnalyze(const RunStats& run, bool include_timing);

}  // namespace stats
}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_STATS_H_
