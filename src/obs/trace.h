// Phase-level tracing for the inverse-chase pipeline.
//
// RAII `Span`s form a hierarchical phase tree: a span opened while another
// span is live on the same thread becomes its child. Finished spans are
// recorded as trace events (name, wall-time interval, thread, integer
// attributes) in the process-global `Tracer`, from which obs/report.h
// renders Chrome trace-event JSON (`chrome://tracing` / Perfetto) and
// per-phase aggregates.
//
// Tracing is off by default. The only cost on the disabled path is one
// relaxed atomic load and a branch per span, so instrumentation can stay
// in hot paths permanently (`bench_e8` guards the budget). Worker threads
// are fully supported: the parent link is thread-local, each thread gets a
// stable small id, and event recording is mutex-protected.
#ifndef DXREC_OBS_TRACE_H_
#define DXREC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dxrec {
namespace obs {

namespace internal {
inline std::atomic<bool> g_enabled{false};
}  // namespace internal

// Master switch shared by tracing and metrics flushing. Reading is cheap
// enough for inner loops.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

// Observability knobs carried by EngineOptions (core/engine.h). Kept here
// so core/ depends only on obs/, never the other way around.
struct ObsOptions {
  // Turns the process-global collectors on. Never turns them off: another
  // component (the CLI, a test harness) may have enabled them first.
  bool enabled = false;
  // Turns the flight-recorder event sink on (obs/events.h); implies
  // `enabled`. Same never-turns-off contract.
  bool events = false;
  // Resizes the event ring (and clears it). 0 keeps the current capacity.
  size_t event_capacity = 0;
  // > 0: each engine call runs under a ProgressScope (obs/progress.h)
  // with this heartbeat interval, joined before the call returns.
  double progress_seconds = 0;
  // Heartbeat one-liners to stderr (only meaningful with the above).
  bool progress_stderr = true;
  // Starts the global sampling profiler (obs/profiler.h) with per-phase
  // allocation accounting; implies `enabled`. Never stops a running
  // profiler (same never-turns-off contract as the collectors).
  bool profile = false;
  // Profiler sampling interval; <= 0 picks the default (5 ms).
  double profile_interval_seconds = 0;
  // > 0: starts the periodic snapshotter (obs/export.h), which rotates
  // the global metrics window and feeds registered exporters at this
  // interval.
  double snapshot_interval_seconds = 0;
  // Turns on access-path statistics (obs/stats.h): per-relation /
  // per-phase work attribution feeding the "stats" report section,
  // `stats.*` metric families and `explain analyze`; implies `enabled`.
  // Same never-turns-off contract as the collectors.
  bool stats = false;
};

// Applies the knobs to the global state (currently: enables collection).
void Apply(const ObsOptions& options);

// One finished span.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t start_us = 0;     // relative to the tracer epoch
  int64_t duration_us = 0;  // wall time
  uint32_t thread_id = 0;   // small sequential id, stable per thread
  uint64_t span_id = 0;     // unique per span, never 0
  uint64_t parent_id = 0;   // 0 = root of its thread's tree
  std::vector<std::pair<std::string, int64_t>> args;
};

// Process-global sink for finished spans.
class Tracer {
 public:
  static Tracer& Global();

  // Drops all recorded events and restarts the epoch.
  void Clear();

  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;

  // Microseconds since the epoch (used by Span; public for tests).
  int64_t NowMicros() const;

  // Called by ~Span. Thread-safe.
  void Record(TraceEvent event);

 private:
  Tracer();

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  int64_t epoch_ns_ = 0;  // steady_clock origin of the trace
};

// RAII span. Construct to open a phase, destroy to record it. Inactive
// (and free apart from the Enabled() check) when tracing is disabled at
// construction time.
class Span {
 public:
  explicit Span(const char* name, const char* category = "dxrec");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  // Attaches an integer attribute (counter, size, index) to the span.
  // No-op when inactive.
  void AddArg(const char* key, int64_t value);

  // The span's id (0 when inactive); children link to it automatically.
  uint64_t id() const { return event_.span_id; }

 private:
  bool active_ = false;
  bool pushed_ = false;     // frame pushed onto the profiler stack
  Span* parent_ = nullptr;  // enclosing span on this thread
  TraceEvent event_;
};

// The innermost active span on the calling thread, or nullptr.
Span* CurrentSpan();

// Small sequential id for the calling thread (assigned on first use).
uint32_t CurrentThreadId();

}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_TRACE_H_
