#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dxrec {
namespace obs {

namespace {

// Raise-to-max over a relaxed atomic; losing a race is fine because the
// winner wrote a larger value.
void AtomicMax(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t current = slot.load(std::memory_order_relaxed);
  while (current < value &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

// Midpoint of an inclusive bucket range; the representative value used
// for quantiles so error is at most half the bucket width.
uint64_t Midpoint(const BucketBounds& b) { return b.lb + (b.ub - b.lb) / 2; }

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kExactLimit) return static_cast<size_t>(value);
  // Highest set bit e >= 7; sub-bucket = the 6 bits below it.
  const int e = std::bit_width(value) - 1;
  const int shift = e - 6;
  const size_t sub = static_cast<size_t>(value >> shift) - kSubBucketsPerOctave;
  return kExactLimit +
         static_cast<size_t>(e - static_cast<int>(kSubBucketBits)) *
             kSubBucketsPerOctave +
         sub;
}

BucketBounds Histogram::BucketBoundsFor(size_t index) {
  BucketBounds bounds;
  if (index < kExactLimit) {
    bounds.lb = bounds.ub = index;
    return bounds;
  }
  const size_t offset = index - kExactLimit;
  const int e =
      static_cast<int>(offset / kSubBucketsPerOctave + kSubBucketBits);
  const uint64_t sub = offset % kSubBucketsPerOctave;
  const int shift = e - 6;
  bounds.lb = (kSubBucketsPerOctave + sub) << shift;
  bounds.ub = bounds.lb + ((uint64_t{1} << shift) - 1);
  return bounds;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMax(max_, value);
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

uint64_t Histogram::BucketCount(size_t bucket) const {
  return bucket < kNumBuckets
             ? buckets_[bucket].load(std::memory_order_relaxed)
             : 0;
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1,
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return Midpoint(BucketBoundsFor(i));
  }
  return Max();  // count_ raced ahead of a bucket write; max is safe
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t SnapshotValueAtQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0 || snapshot.buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(snapshot.count))));
  uint64_t seen = 0;
  for (const HistogramBucketSnapshot& bucket : snapshot.buckets) {
    seen += bucket.count;
    if (seen >= rank) return Midpoint(BucketBounds{bucket.lb, bucket.ub});
  }
  return snapshot.max;
}

namespace {

// end - start for one histogram. Buckets are matched by lower bound
// (both sides use the same layout); a total count that shrank means the
// instrument was reset mid-window, in which case the end value stands.
HistogramSnapshot DiffHistogram(const HistogramSnapshot& start,
                                const HistogramSnapshot& end) {
  if (end.count < start.count) return end;  // reset between snapshots
  HistogramSnapshot diff;
  diff.name = end.name;
  diff.count = end.count - start.count;
  diff.sum = end.sum >= start.sum ? end.sum - start.sum : end.sum;
  diff.max = end.max;
  size_t si = 0;
  for (const HistogramBucketSnapshot& eb : end.buckets) {
    while (si < start.buckets.size() && start.buckets[si].lb < eb.lb) ++si;
    uint64_t before = 0;
    if (si < start.buckets.size() && start.buckets[si].lb == eb.lb) {
      before = start.buckets[si].count;
    }
    if (eb.count > before) {
      diff.buckets.push_back({eb.lb, eb.ub, eb.count - before});
    }
  }
  return diff;
}

}  // namespace

MetricsSnapshot DiffMetrics(const MetricsSnapshot& start,
                            const MetricsSnapshot& end) {
  MetricsSnapshot diff;
  // Snapshots are sorted by name (map iteration order), so merge-walk.
  size_t si = 0;
  for (const auto& [name, value] : end.counters) {
    while (si < start.counters.size() && start.counters[si].first < name) ++si;
    uint64_t before = 0;
    if (si < start.counters.size() && start.counters[si].first == name) {
      before = start.counters[si].second;
    }
    diff.counters.emplace_back(name, value >= before ? value - before : value);
  }
  diff.gauges = end.gauges;  // point-in-time: end wins
  si = 0;
  for (const HistogramSnapshot& eh : end.histograms) {
    while (si < start.histograms.size() &&
           start.histograms[si].name < eh.name) {
      ++si;
    }
    if (si < start.histograms.size() && start.histograms[si].name == eh.name) {
      diff.histograms.push_back(DiffHistogram(start.histograms[si], eh));
    } else {
      diff.histograms.push_back(eh);
    }
  }
  return diff;
}

MetricsWindow::MetricsWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

MetricsWindow& MetricsWindow::Global() {
  static MetricsWindow* window = new MetricsWindow();  // leaked
  return *window;
}

void MetricsWindow::RotateWith(double t_seconds, MetricsSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.emplace_back(t_seconds, std::move(snapshot));
  while (ring_.size() > capacity_) ring_.pop_front();
}

void MetricsWindow::Rotate(double t_seconds) {
  RotateWith(t_seconds, MetricsRegistry::Global().Read());
}

bool MetricsWindow::Window(double seconds, MetricsSnapshot* delta,
                           double* actual_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return false;
  const auto& newest = ring_.back();
  // Entry whose age (relative to the newest rotation) is closest to the
  // requested window, excluding the newest itself.
  size_t best = 0;
  double best_gap = std::abs((newest.first - ring_[0].first) - seconds);
  for (size_t i = 1; i + 1 < ring_.size(); ++i) {
    const double gap = std::abs((newest.first - ring_[i].first) - seconds);
    if (gap < best_gap) {
      best = i;
      best_gap = gap;
    }
  }
  if (delta != nullptr) *delta = DiffMetrics(ring_[best].second, newest.second);
  if (actual_seconds != nullptr) {
    *actual_seconds = newest.first - ring_[best].first;
  }
  return true;
}

size_t MetricsWindow::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void MetricsWindow::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

std::vector<std::pair<double, MetricsSnapshot>> MetricsWindow::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Read() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Get());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Get());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = histogram->Count();
    snap.sum = histogram->Sum();
    snap.max = histogram->Max();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t c = histogram->BucketCount(i);
      if (c == 0) continue;
      const BucketBounds bounds = Histogram::BucketBoundsFor(i);
      snap.buckets.push_back({bounds.lb, bounds.ub, c});
    }
    out.histograms.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace dxrec
