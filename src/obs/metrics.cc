#include "obs/metrics.h"

#include <bit>

namespace dxrec {
namespace obs {

namespace {

size_t BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

// Upper bound of bucket i: 0 for bucket 0, else 2^i - 1.
uint64_t BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t seen = slot->load(std::memory_order_relaxed);
  while (seen < value && !slot->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMax(&max_, value);
}

double Histogram::Mean() const {
  uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

uint64_t Histogram::BucketCount(size_t bucket) const {
  return bucket < kNumBuckets
             ? buckets_[bucket].load(std::memory_order_relaxed)
             : 0;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Read() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Get());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Get());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = histogram->Count();
    snap.sum = histogram->Sum();
    snap.max = histogram->Max();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t c = histogram->BucketCount(i);
      if (c > 0) snap.buckets.emplace_back(BucketUpperBound(i), c);
    }
    out.histograms.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace dxrec
