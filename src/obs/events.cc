#include "obs/events.h"

#include <deque>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "resilience/execution_context.h"

namespace dxrec {
namespace obs {

namespace {

// Bounded log of budget exhaustions for the run report. Kept separate
// from the event ring so a terminal budget failure survives even when a
// chatty run overwrote its event.
constexpr size_t kMaxBudgetLog = 32;
std::mutex g_budget_log_mu;
std::deque<BudgetInfo>& BudgetLog() {
  static std::deque<BudgetInfo>* log = new std::deque<BudgetInfo>();
  return *log;
}

}  // namespace

void SetEventsEnabled(bool enabled) {
  internal::g_events_enabled.store(enabled, std::memory_order_relaxed);
}

EventSink& EventSink::Global() {
  static EventSink* sink = new EventSink();  // leaked: process lifetime
  return *sink;
}

void EventSink::Configure(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity != 0) capacity_ = capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  oldest_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

void EventSink::Clear() { Configure(0); }

size_t EventSink::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void EventSink::Record(Event event) {
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++recorded_;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      ring_[oldest_] = std::move(event);
      oldest_ = (oldest_ + 1) % capacity_;
      ++dropped_;
      overwrote = true;
    }
  }
  if (overwrote) {
    static Counter* dropped =
        MetricsRegistry::Global().GetCounter("events.dropped");
    dropped->Add(1);
  }
}

std::vector<Event> EventSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(oldest_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t EventSink::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t EventSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Emit(const char* type,
          std::initializer_list<std::pair<const char*, int64_t>> int_args,
          std::initializer_list<std::pair<const char*, std::string>>
              str_args) {
  if (!EventsEnabled()) return;
  Event event;
  event.t_us = Tracer::Global().NowMicros();
  event.thread_id = CurrentThreadId();
  event.type = type;
  event.int_args.assign(int_args.begin(), int_args.end());
  event.str_args.assign(str_args.begin(), str_args.end());
  EventSink::Global().Record(std::move(event));
}

std::string EventsJsonl(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    out += "{\"t_us\":" + std::to_string(e.t_us) +
           ",\"tid\":" + std::to_string(e.thread_id) + ",\"type\":\"" +
           JsonEscape(e.type) + "\",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : e.int_args) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(key) + "\":" + std::to_string(value);
    }
    for (const auto& [key, value] : e.str_args) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}}\n";
  }
  return out;
}

Status WriteEventsJsonl(const std::string& path) {
  return WriteTextFile(path, EventsJsonl(EventSink::Global().Snapshot()));
}

Status BudgetExhausted(BudgetInfo info) {
  if (EventsEnabled()) {
    Emit("budget.exhausted",
         {{"limit", static_cast<int64_t>(info.limit)},
          {"consumed", static_cast<int64_t>(info.consumed)}},
         {{"budget", info.budget}, {"phase", info.phase}});
  }
  if (Enabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter* exhausted = registry.GetCounter("budget.exhausted");
    exhausted->Add(1);
    registry.GetGauge("budget." + info.budget + ".limit")
        ->Set(static_cast<int64_t>(info.limit));
    registry.GetGauge("budget." + info.budget + ".consumed")
        ->Set(static_cast<int64_t>(info.consumed));
    std::lock_guard<std::mutex> lock(g_budget_log_mu);
    std::deque<BudgetInfo>& log = BudgetLog();
    log.push_back(info);
    if (log.size() > kMaxBudgetLog) log.pop_front();
  }
  return Status::ResourceExhausted(std::move(info));
}

std::vector<BudgetInfo> BudgetLogSnapshot() {
  std::lock_guard<std::mutex> lock(g_budget_log_mu);
  const std::deque<BudgetInfo>& log = BudgetLog();
  return std::vector<BudgetInfo>(log.begin(), log.end());
}

void ClearBudgetLog() {
  std::lock_guard<std::mutex> lock(g_budget_log_mu);
  BudgetLog().clear();
}

bool BudgetMeter::TickOk() {
  if (ProgressActive()) {
    NoteWork(kTickPeriod);
    NoteBudgetRemaining(name_, left_);
  }
  if (EventsEnabled()) {
    Emit("budget.tick",
         {{"limit", static_cast<int64_t>(limit_)},
          {"consumed", static_cast<int64_t>(limit_ - left_)}},
         {{"budget", name_}});
  }
  if (context_ != nullptr) {
    resilience::StopCause cause = context_->Check();
    if (cause != resilience::StopCause::kNone) {
      stop_ = resilience::StopStatusFor(*context_, cause, phase_);
      return false;
    }
  }
  return true;
}

bool BudgetMeter::InjectionOk() {
  Status injected =
      dxrec::testing::FaultInjector::Global().OnSite(name_, phase_);
  if (injected.ok()) return true;
  stop_ = std::move(injected);
  return false;
}

}  // namespace obs
}  // namespace dxrec
