#include "obs/export.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/events.h"
#include "obs/report.h"

namespace dxrec {
namespace obs {

ExporterRegistry& ExporterRegistry::Global() {
  static ExporterRegistry* registry = new ExporterRegistry();  // leaked
  return *registry;
}

void ExporterRegistry::Add(std::shared_ptr<Exporter> exporter) {
  if (exporter == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  exporters_.push_back(std::move(exporter));
}

void ExporterRegistry::Remove(const Exporter* exporter) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = exporters_.begin(); it != exporters_.end(); ++it) {
    if (it->get() == exporter) {
      exporters_.erase(it);
      return;
    }
  }
}

size_t ExporterRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exporters_.size();
}

void ExporterRegistry::EmitMetrics(double t_seconds,
                                   const MetricsSnapshot& cumulative,
                                   const MetricsSnapshot* window,
                                   double window_seconds) {
  std::vector<std::shared_ptr<Exporter>> sinks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sinks = exporters_;
  }
  for (const std::shared_ptr<Exporter>& sink : sinks) {
    sink->ExportMetrics(t_seconds, cumulative, window, window_seconds);
  }
}

void ExporterRegistry::EmitHeartbeat(const HeartbeatSample& sample) {
  std::vector<std::shared_ptr<Exporter>> sinks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sinks = exporters_;
  }
  for (const std::shared_ptr<Exporter>& sink : sinks) {
    sink->ExportHeartbeat(sample);
  }
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out = "dxrec_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

// Canonical-ish float rendering for `le` label values ("127.0", "+Inf").
std::string LeValue(uint64_t ub) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ub));
  return buf;
}

void AppendCounterFamily(const std::string& name, uint64_t value,
                         std::string* out) {
  const std::string metric = SanitizeMetricName(name);
  *out += "# TYPE " + metric + " counter\n";
  *out += metric + "_total " + std::to_string(value) + "\n";
}

void AppendGaugeFamily(const std::string& name, int64_t value,
                       std::string* out) {
  const std::string metric = SanitizeMetricName(name);
  *out += "# TYPE " + metric + " gauge\n";
  *out += metric + " " + std::to_string(value) + "\n";
}

void AppendHistogramFamily(const std::string& name,
                           const HistogramSnapshot& h, std::string* out) {
  const std::string metric = SanitizeMetricName(name);
  *out += "# TYPE " + metric + " histogram\n";
  uint64_t cumulative = 0;
  for (const HistogramBucketSnapshot& bucket : h.buckets) {
    cumulative += bucket.count;
    *out += metric + "_bucket{le=\"" + LeValue(bucket.ub) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  *out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
  *out += metric + "_sum " + std::to_string(h.sum) + "\n";
  *out += metric + "_count " + std::to_string(h.count) + "\n";
}

}  // namespace

std::string OpenMetricsText(const MetricsSnapshot& snapshot,
                            const MetricsSnapshot* window,
                            double window_seconds) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    AppendCounterFamily(name, value, &out);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    AppendGaugeFamily(name, value, &out);
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    AppendHistogramFamily(h.name, h, &out);
  }
  if (window != nullptr) {
    // Windowed deltas: counters become gauges (a delta is not monotone),
    // histograms keep their shape, all under `<name>_window` names with
    // the achieved span published alongside.
    char span[32];
    std::snprintf(span, sizeof(span), "%.3f", window_seconds);
    out += "# TYPE dxrec_window_seconds gauge\n";
    out += "dxrec_window_seconds ";
    out += span;
    out += "\n";
    for (const auto& [name, value] : window->counters) {
      AppendGaugeFamily(name + ".window", static_cast<int64_t>(value), &out);
    }
    for (const HistogramSnapshot& h : window->histograms) {
      AppendHistogramFamily(h.name + ".window", h, &out);
    }
  }
  out += "# EOF\n";
  return out;
}

Status WriteOpenMetrics(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const MetricsSnapshot* window,
                        double window_seconds) {
  return WriteTextFile(path,
                       OpenMetricsText(snapshot, window, window_seconds));
}

JsonlSnapshotExporter::JsonlSnapshotExporter(std::string path)
    : path_(std::move(path)) {}

void JsonlSnapshotExporter::ExportMetrics(double t_seconds,
                                          const MetricsSnapshot& cumulative,
                                          const MetricsSnapshot* window,
                                          double window_seconds) {
  char t_buf[32];
  std::snprintf(t_buf, sizeof(t_buf), "%.3f", t_seconds);
  std::string line = "{\"t\":";
  line += t_buf;
  line += ",\"metrics\":" + MetricsJson(cumulative);
  if (window != nullptr) {
    char span[32];
    std::snprintf(span, sizeof(span), "%.3f", window_seconds);
    line += ",\"window_seconds\":";
    line += span;
    line += ",\"window\":" + MetricsJson(*window);
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) {
    status_ = Status::NotFound("cannot open '" + path_ + "' for appending");
    return;
  }
  const size_t written = std::fwrite(line.data(), 1, line.size(), f);
  const int close_err = std::fclose(f);
  if (written != line.size() || close_err != 0) {
    status_ = Status::Internal("short write to '" + path_ + "'");
    return;
  }
  ++lines_;
}

uint64_t JsonlSnapshotExporter::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void StderrHeartbeatExporter::ExportHeartbeat(const HeartbeatSample& sample) {
  std::fprintf(stderr,
               "[dxrec] phase=%s work=%" PRIu64 " covers=%" PRIu64
               " budget=%s:%" PRId64 " elapsed=%.1fs\n",
               sample.phase[0] == '\0' ? "-" : sample.phase, sample.work,
               sample.covers,
               sample.budget_name[0] == '\0' ? "-" : sample.budget_name,
               sample.budget_remaining, sample.elapsed_seconds);
  if (sample.stalled) {
    std::fprintf(stderr,
                 "[dxrec] WATCHDOG: no forward progress for %.1fs "
                 "(phase=%s work=%" PRIu64 ")\n",
                 sample.stalled_seconds,
                 sample.phase[0] == '\0' ? "-" : sample.phase, sample.work);
  }
}

void UpdateDerivedGauges() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  EventSink& sink = EventSink::Global();
  static Gauge* recorded = registry.GetGauge("events.recorded");
  static Gauge* dropped = registry.GetGauge("events.dropped");
  // Flight-recorder health: ring capacity and current occupancy, so an
  // exporter can alert on a saturated (drop-prone) ring without parsing
  // the JSONL events file.
  static Gauge* ring_capacity = registry.GetGauge("events.ring_capacity");
  static Gauge* ring_size = registry.GetGauge("events.ring_size");
  recorded->Set(static_cast<int64_t>(sink.recorded()));
  dropped->Set(static_cast<int64_t>(sink.dropped()));
  ring_capacity->Set(static_cast<int64_t>(sink.capacity()));
  ring_size->Set(static_cast<int64_t>(sink.recorded() - sink.dropped()));
}

Snapshotter& Snapshotter::Global() {
  static Snapshotter* snapshotter = new Snapshotter();  // leaked
  return *snapshotter;
}

bool Snapshotter::Start(double interval_seconds) {
  if (interval_seconds <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return false;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this, interval_seconds] { Loop(interval_seconds); });
  return true;
}

void Snapshotter::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
}

bool Snapshotter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

uint64_t Snapshotter::ticks() const {
  return ticks_.load(std::memory_order_relaxed);
}

void Snapshotter::Loop(double interval_seconds) {
  const auto started = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::duration<double>(interval_seconds),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    TickOnce(t);
    lock.lock();
  }
  // Final snapshot so short runs still leave at least one line behind.
  lock.unlock();
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  TickOnce(t);
  lock.lock();
}

void Snapshotter::TickOnce(double t_seconds) {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  UpdateDerivedGauges();
  MetricsWindow& window = MetricsWindow::Global();
  window.Rotate(t_seconds);
  MetricsSnapshot cumulative = MetricsRegistry::Global().Read();
  MetricsSnapshot delta;
  double actual = 0;
  const bool have_window = window.Window(60.0, &delta, &actual);
  ExporterRegistry::Global().EmitMetrics(
      t_seconds, cumulative, have_window ? &delta : nullptr, actual);
}

}  // namespace obs
}  // namespace dxrec
