#include "obs/stats.h"

#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "obs/report.h"
#include "relational/schema.h"
#include "util/table.h"

namespace dxrec {
namespace obs {
namespace stats {

namespace {

thread_local SearchStats* t_search_sink = nullptr;
thread_local ChaseStats* t_chase_sink = nullptr;

std::mutex g_last_run_mu;
RunStats g_last_run;  // valid == false until the first recorded run

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Percentage with one decimal: the deterministic selectivity rendering.
std::string FormatPct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ratio * 100.0);
  return buf;
}

std::string FormatMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1000.0);
  return buf;
}

std::string U64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

void SetEnabled(bool enabled) {
  internal::g_stats_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Merging.

void RelationAccess::Merge(const RelationAccess& other) {
  lists += other.lists;
  indexed_lists += other.indexed_lists;
  tuples_scanned += other.tuples_scanned;
  tuples_matched += other.tuples_matched;
}

double RelationAccess::Selectivity() const {
  if (tuples_scanned == 0) return 0;
  return static_cast<double>(tuples_matched) /
         static_cast<double>(tuples_scanned);
}

void SearchStats::Merge(const SearchStats& other) {
  searches += other.searches;
  columnar_searches += other.columnar_searches;
  candidates_tried += other.candidates_tried;
  backtracks += other.backtracks;
  results += other.results;
  truncated += other.truncated;
  for (const auto& [rel, access] : other.relations) {
    relations[rel].Merge(access);
  }
}

RelationAccess SearchStats::Totals() const {
  RelationAccess total;
  for (const auto& [rel, access] : relations) total.Merge(access);
  return total;
}

void DependencyStats::Merge(const DependencyStats& other) {
  triggers_tested += other.triggers_tested;
  triggers_fired += other.triggers_fired;
  tuples_added += other.tuples_added;
  match.Merge(other.match);
}

void ChaseStats::EnsureDeps(size_t n) {
  if (deps.size() < n) deps.resize(n);
}

void ChaseStats::Merge(const ChaseStats& other) {
  rounds += other.rounds;
  tuples_added += other.tuples_added;
  round_deltas.insert(round_deltas.end(), other.round_deltas.begin(),
                      other.round_deltas.end());
  EnsureDeps(other.deps.size());
  for (size_t i = 0; i < other.deps.size(); ++i) deps[i].Merge(other.deps[i]);
}

std::map<uint32_t, RelationAccess> RunStats::AggregateRelations() const {
  std::map<uint32_t, RelationAccess> out = hom_enum.relations;
  auto add = [&out](const SearchStats& s) {
    for (const auto& [rel, access] : s.relations) out[rel].Merge(access);
  };
  for (const CoverStats& cover : covers) {
    for (const DependencyStats& dep : cover.forward_chase.deps) {
      add(dep.match);
    }
    add(cover.g_hom);
    add(cover.verify);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sinks.

SearchStats* CurrentSearchSink() { return t_search_sink; }
ChaseStats* CurrentChaseSink() { return t_chase_sink; }

ScopedSearch::ScopedSearch(SearchStats* target) {
  if (target == nullptr) return;
  installed_ = true;
  prev_ = t_search_sink;
  t_search_sink = target;
}

ScopedSearch::~ScopedSearch() {
  if (installed_) t_search_sink = prev_;
}

ScopedChase::ScopedChase(ChaseStats* target) {
  if (target == nullptr) return;
  installed_ = true;
  prev_ = t_chase_sink;
  t_chase_sink = target;
}

ScopedChase::~ScopedChase() {
  if (installed_) t_chase_sink = prev_;
}

// ---------------------------------------------------------------------------
// Recording.

void RecordSearch(const SearchStats& search) {
  if (!Enabled()) return;
  if (t_search_sink != nullptr) t_search_sink->Merge(search);
  auto& registry = MetricsRegistry::Global();
  static Counter* searches = registry.GetCounter("stats.search.searches");
  static Counter* candidates = registry.GetCounter("stats.search.candidates");
  static Counter* backtracks = registry.GetCounter("stats.search.backtracks");
  static Counter* results = registry.GetCounter("stats.search.results");
  static Counter* scanned =
      registry.GetCounter("stats.search.tuples_scanned");
  static Counter* matched =
      registry.GetCounter("stats.search.tuples_matched");
  static Histogram* fanout =
      registry.GetHistogram("stats.search.fanout_per_search");
  RelationAccess totals = search.Totals();
  searches->Add(search.searches);
  candidates->Add(search.candidates_tried);
  backtracks->Add(search.backtracks);
  results->Add(search.results);
  scanned->Add(totals.tuples_scanned);
  matched->Add(totals.tuples_matched);
  fanout->Record(totals.tuples_scanned);
}

void NoteFullScan() {
  if (!Enabled()) return;
  static Counter* scans =
      MetricsRegistry::Global().GetCounter("stats.instance.full_scans");
  scans->Add(1);
}

void NoteIndexProbe() {
  if (!Enabled()) return;
  static Counter* probes =
      MetricsRegistry::Global().GetCounter("stats.instance.index_probes");
  probes->Add(1);
}

void NoteChaseRound(uint64_t triggers_tested, uint64_t triggers_fired,
                    uint64_t tuples_added) {
  if (!Enabled()) return;
  auto& registry = MetricsRegistry::Global();
  static Counter* rounds = registry.GetCounter("stats.chase.rounds");
  static Counter* tested = registry.GetCounter("stats.chase.triggers_tested");
  static Counter* fired = registry.GetCounter("stats.chase.triggers_fired");
  static Counter* added = registry.GetCounter("stats.chase.tuples_added");
  static Histogram* delta =
      registry.GetHistogram("stats.chase.round_tuples");
  rounds->Add(1);
  tested->Add(triggers_tested);
  fired->Add(triggers_fired);
  added->Add(tuples_added);
  delta->Record(tuples_added);
}

void NoteEvaluation(uint64_t answers) {
  if (!Enabled()) return;
  auto& registry = MetricsRegistry::Global();
  static Counter* queries = registry.GetCounter("stats.eval.queries");
  static Counter* answer_count = registry.GetCounter("stats.eval.answers");
  queries->Add(1);
  answer_count->Add(answers);
}

// ---------------------------------------------------------------------------
// Last-run snapshot.

void SetLastRun(RunStats run) {
  std::lock_guard<std::mutex> lock(g_last_run_mu);
  g_last_run = std::move(run);
}

bool LastRun(RunStats* out) {
  std::lock_guard<std::mutex> lock(g_last_run_mu);
  if (!g_last_run.valid) return false;
  *out = g_last_run;
  return true;
}

void FlushRunToMetrics(const RunStats& run) {
  if (!Enabled()) return;
  auto& registry = MetricsRegistry::Global();
  // Not "stats.run.count": `_count` is a reserved OpenMetrics sample
  // suffix, and scripts/validate_openmetrics.py rejects family names
  // that end in one.
  static Counter* runs = registry.GetCounter("stats.runs");
  static Counter* covers = registry.GetCounter("stats.run.covers");
  static Counter* recoveries = registry.GetCounter("stats.run.recoveries");
  static Gauge* last_scanned =
      registry.GetGauge("stats.run.last_tuples_scanned");
  static Gauge* last_selectivity =
      registry.GetGauge("stats.run.last_selectivity_permille");
  runs->Add(1);
  covers->Add(run.num_covers);
  recoveries->Add(run.recoveries);
  RelationAccess totals;
  for (const auto& [rel, access] : run.AggregateRelations()) {
    (void)rel;
    totals.Merge(access);
  }
  last_scanned->Set(static_cast<int64_t>(totals.tuples_scanned));
  last_selectivity->Set(
      static_cast<int64_t>(totals.Selectivity() * 1000.0 + 0.5));
}

// ---------------------------------------------------------------------------
// JSON.

namespace {

void AppendRelationAccessJson(std::string* out, uint32_t rel,
                              const RelationAccess& access) {
  out->append("{\"relation\":\"");
  out->append(JsonEscape(RelationName(rel)));
  out->append("\",\"lists\":");
  out->append(U64(access.lists));
  out->append(",\"indexed_lists\":");
  out->append(U64(access.indexed_lists));
  out->append(",\"tuples_scanned\":");
  out->append(U64(access.tuples_scanned));
  out->append(",\"tuples_matched\":");
  out->append(U64(access.tuples_matched));
  out->append(",\"selectivity\":");
  out->append(FormatDouble(access.Selectivity()));
  out->append("}");
}

void AppendSearchJson(std::string* out, const SearchStats& search) {
  out->append("{\"searches\":");
  out->append(U64(search.searches));
  out->append(",\"columnar_searches\":");
  out->append(U64(search.columnar_searches));
  out->append(",\"candidates_tried\":");
  out->append(U64(search.candidates_tried));
  out->append(",\"backtracks\":");
  out->append(U64(search.backtracks));
  out->append(",\"results\":");
  out->append(U64(search.results));
  out->append(",\"truncated\":");
  out->append(U64(search.truncated));
  out->append(",\"relations\":[");
  bool first = true;
  for (const auto& [rel, access] : search.relations) {
    if (!first) out->append(",");
    first = false;
    AppendRelationAccessJson(out, rel, access);
  }
  out->append("]}");
}

void AppendChaseJson(std::string* out, const ChaseStats& chase) {
  out->append("{\"rounds\":");
  out->append(U64(chase.rounds));
  out->append(",\"tuples_added\":");
  out->append(U64(chase.tuples_added));
  out->append(",\"round_deltas\":[");
  for (size_t i = 0; i < chase.round_deltas.size(); ++i) {
    if (i > 0) out->append(",");
    out->append(U64(chase.round_deltas[i]));
  }
  out->append("],\"deps\":[");
  for (size_t i = 0; i < chase.deps.size(); ++i) {
    const DependencyStats& dep = chase.deps[i];
    if (i > 0) out->append(",");
    out->append("{\"tgd\":");
    out->append(U64(i));
    out->append(",\"triggers_tested\":");
    out->append(U64(dep.triggers_tested));
    out->append(",\"triggers_fired\":");
    out->append(U64(dep.triggers_fired));
    out->append(",\"tuples_added\":");
    out->append(U64(dep.tuples_added));
    out->append(",\"match\":");
    AppendSearchJson(out, dep.match);
    out->append("}");
  }
  out->append("]}");
}

void AppendCoverJson(std::string* out, const CoverStats& cover) {
  out->append("{\"index\":");
  out->append(U64(cover.cover_index));
  out->append(",\"size\":");
  out->append(U64(cover.cover_size));
  out->append(",\"passed_sub\":");
  out->append(cover.passed_sub ? "true" : "false");
  out->append(",\"reverse_chase\":");
  AppendChaseJson(out, cover.reverse_chase);
  out->append(",\"forward_chase\":");
  AppendChaseJson(out, cover.forward_chase);
  out->append(",\"g_hom\":");
  AppendSearchJson(out, cover.g_hom);
  out->append(",\"verify\":");
  AppendSearchJson(out, cover.verify);
  out->append(",\"source_atoms\":");
  out->append(U64(cover.source_atoms));
  out->append(",\"chased_atoms\":");
  out->append(U64(cover.chased_atoms));
  out->append(",\"g_homs\":");
  out->append(U64(cover.g_homs));
  out->append(",\"emitted\":");
  out->append(U64(cover.emitted));
  out->append(",\"rejected\":");
  out->append(U64(cover.rejected));
  out->append(",\"seconds\":{\"reverse\":");
  out->append(FormatDouble(cover.seconds_reverse));
  out->append(",\"forward\":");
  out->append(FormatDouble(cover.seconds_forward));
  out->append(",\"g_hom\":");
  out->append(FormatDouble(cover.seconds_ghom));
  out->append(",\"verify\":");
  out->append(FormatDouble(cover.seconds_verify));
  out->append("},\"alloc_bytes\":");
  out->append(U64(cover.alloc_bytes));
  out->append("}");
}

}  // namespace

std::string StatsJson() {
  std::string out = "{\"enabled\":";
  out.append(Enabled() ? "true" : "false");
  RunStats run;
  if (!LastRun(&run)) {
    out.append(",\"have_run\":false}");
    return out;
  }
  out.append(",\"have_run\":true,\"run\":{\"layout\":\"");
  out.append(JsonEscape(run.layout));
  out.append("\",\"target_atoms\":");
  out.append(U64(run.target_atoms));
  out.append(",\"sub_constraints\":");
  out.append(U64(run.sub_constraints));
  out.append(",\"num_homs\":");
  out.append(U64(run.num_homs));
  out.append(",\"num_covers\":");
  out.append(U64(run.num_covers));
  out.append(",\"num_covers_passing_sub\":");
  out.append(U64(run.num_covers_passing_sub));
  out.append(",\"recoveries\":");
  out.append(U64(run.recoveries));
  out.append(",\"seconds_total\":");
  out.append(FormatDouble(run.seconds_total));
  out.append(",\"hom_enum\":");
  AppendSearchJson(&out, run.hom_enum);
  out.append(",\"relations\":[");
  bool first = true;
  for (const auto& [rel, access] : run.AggregateRelations()) {
    if (!first) out.append(",");
    first = false;
    AppendRelationAccessJson(&out, rel, access);
  }
  out.append("],\"covers\":[");
  for (size_t i = 0; i < run.covers.size(); ++i) {
    if (i > 0) out.append(",");
    AppendCoverJson(&out, run.covers[i]);
  }
  out.append("]}}");
  return out;
}

// ---------------------------------------------------------------------------
// Text rendering.

namespace {

// One row of the operator-tree table. `ms` is only consulted when the
// table was built with timing columns.
void AddTreeRow(TextTable* table, bool timing, const std::string& node,
                const std::string& work, const RelationAccess& access,
                const std::string& out, const std::string& ms) {
  std::vector<std::string> cells;
  cells.push_back(node);
  cells.push_back(work);
  if (access.tuples_scanned == 0 && access.tuples_matched == 0) {
    cells.push_back("");
    cells.push_back("");
    cells.push_back("");
  } else {
    cells.push_back(U64(access.tuples_scanned));
    cells.push_back(U64(access.tuples_matched));
    cells.push_back(FormatPct(access.Selectivity()));
  }
  cells.push_back(out);
  if (timing) cells.push_back(ms);
  table->AddRow(std::move(cells));
}

// Which physical layout served a batch of searches: all columnar, all
// row, or a mix (e.g. a run whose layout was switched mid-way).
std::string LayoutTag(uint64_t searches, uint64_t columnar) {
  if (searches == 0) return "";
  if (columnar == 0) return " lay=row";
  if (columnar >= searches) return " lay=col";
  return " lay=mix";
}

std::string SearchWork(const SearchStats& s) {
  std::string work = "searches=" + U64(s.searches) +
                     " cand=" + U64(s.candidates_tried) +
                     " bt=" + U64(s.backtracks);
  if (s.truncated > 0) work += " trunc=" + U64(s.truncated);
  work += LayoutTag(s.searches, s.columnar_searches);
  return work;
}

void AddSearchRelationRows(TextTable* table, bool timing,
                           const std::string& indent,
                           const SearchStats& search) {
  for (const auto& [rel, access] : search.relations) {
    AddTreeRow(table, timing, indent + RelationName(rel),
               "lists=" + U64(access.lists) +
                   " idx=" + U64(access.indexed_lists),
               access, "", "");
  }
}

void AddChaseRows(TextTable* table, bool timing, const std::string& node,
                  const ChaseStats& chase, const std::string& out,
                  const std::string& ms, const std::string& indent) {
  RelationAccess totals;
  uint64_t tested = 0;
  uint64_t fired = 0;
  uint64_t searches = 0;
  uint64_t columnar = 0;
  for (const DependencyStats& dep : chase.deps) {
    totals.Merge(dep.match.Totals());
    tested += dep.triggers_tested;
    fired += dep.triggers_fired;
    searches += dep.match.searches;
    columnar += dep.match.columnar_searches;
  }
  AddTreeRow(table, timing, node,
             "rounds=" + U64(chase.rounds) + " tested=" + U64(tested) +
                 " fired=" + U64(fired) + LayoutTag(searches, columnar),
             totals, out, ms);
  for (size_t r = 0; r < chase.round_deltas.size(); ++r) {
    AddTreeRow(table, timing, indent + "round " + U64(r + 1), "",
               RelationAccess(), "atoms=" + U64(chase.round_deltas[r]), "");
  }
  for (size_t i = 0; i < chase.deps.size(); ++i) {
    const DependencyStats& dep = chase.deps[i];
    if (dep.triggers_tested == 0 && dep.triggers_fired == 0) continue;
    AddTreeRow(table, timing, indent + "tgd " + U64(i),
               "tested=" + U64(dep.triggers_tested) +
                   " fired=" + U64(dep.triggers_fired),
               dep.match.Totals(), "atoms=" + U64(dep.tuples_added), "");
  }
}

}  // namespace

std::string RenderExplainAnalyze(const RunStats& run, bool include_timing) {
  std::string out;
  out.append("run: target_atoms=" + U64(run.target_atoms) +
             " homs=" + U64(run.num_homs) + " covers=" + U64(run.num_covers) +
             " passing_sub=" + U64(run.num_covers_passing_sub) +
             " sub_constraints=" + U64(run.sub_constraints) +
             " recoveries=" + U64(run.recoveries));
  if (!run.layout.empty()) out.append(" layout=" + run.layout);
  if (include_timing) {
    out.append(" total_ms=" + FormatMs(run.seconds_total));
  }
  out.append("\n\naccess paths (whole run, per relation):\n");
  {
    TextTable table({"relation", "lists", "indexed", "scanned", "matched",
                     "sel%"});
    for (const auto& [rel, access] : run.AggregateRelations()) {
      table.AddRow({RelationName(rel), U64(access.lists),
                    U64(access.indexed_lists), U64(access.tuples_scanned),
                    U64(access.tuples_matched),
                    FormatPct(access.Selectivity())});
    }
    out.append(table.ToString());
  }

  out.append("\noperator tree:\n");
  std::vector<std::string> headers = {"node",    "work", "scanned",
                                      "matched", "sel%", "out"};
  if (include_timing) headers.push_back("ms");
  TextTable table(headers);
  AddTreeRow(&table, include_timing, "step1 hom_enum", SearchWork(run.hom_enum),
             run.hom_enum.Totals(), "homs=" + U64(run.num_homs), "");
  AddSearchRelationRows(&table, include_timing, "  ", run.hom_enum);
  for (const CoverStats& cover : run.covers) {
    double cover_ms = cover.seconds_reverse + cover.seconds_forward +
                      cover.seconds_ghom + cover.seconds_verify;
    std::string work = "size=" + U64(cover.cover_size) +
                       (cover.passed_sub ? " sub=pass" : " sub=fail");
    if (include_timing) work += " alloc=" + U64(cover.alloc_bytes);
    AddTreeRow(&table, include_timing, "cover " + U64(cover.cover_index), work,
               RelationAccess(), "emitted=" + U64(cover.emitted),
               FormatMs(cover_ms));
    if (!cover.passed_sub) continue;
    AddChaseRows(&table, include_timing, "  step4 reverse_chase",
                 cover.reverse_chase, "atoms=" + U64(cover.source_atoms),
                 include_timing ? FormatMs(cover.seconds_reverse) : "", "    ");
    AddChaseRows(&table, include_timing, "  step5 forward_chase",
                 cover.forward_chase, "atoms=" + U64(cover.chased_atoms),
                 include_timing ? FormatMs(cover.seconds_forward) : "", "    ");
    AddTreeRow(&table, include_timing, "  step6 g_hom", SearchWork(cover.g_hom),
               cover.g_hom.Totals(), "g_homs=" + U64(cover.g_homs),
               include_timing ? FormatMs(cover.seconds_ghom) : "");
    AddSearchRelationRows(&table, include_timing, "    ", cover.g_hom);
    AddTreeRow(&table, include_timing, "  step7 verify",
               SearchWork(cover.verify), cover.verify.Totals(),
               "emitted=" + U64(cover.emitted) +
                   " rejected=" + U64(cover.rejected),
               include_timing ? FormatMs(cover.seconds_verify) : "");
  }
  out.append(table.ToString());
  return out;
}

}  // namespace stats
}  // namespace obs
}  // namespace dxrec
