#include "obs/trace.h"

#include <chrono>

#include "obs/alloc.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/stats.h"

namespace dxrec {
namespace obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint32_t> g_next_thread_id{1};

thread_local Span* t_current_span = nullptr;

}  // namespace

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Apply(const ObsOptions& options) {
  if (options.enabled || options.events || options.profile || options.stats) {
    SetEnabled(true);
  }
  if (options.events) SetEventsEnabled(true);
  if (options.stats) stats::SetEnabled(true);
  if (options.event_capacity != 0) {
    EventSink::Global().Configure(options.event_capacity);
  }
  if (options.profile) {
    alloc::EnsureLinked();
    alloc::SetEnabled(true);
    Profiler::Global().Start(options.profile_interval_seconds);
  }
  if (options.snapshot_interval_seconds > 0) {
    Snapshotter::Global().Start(options.snapshot_interval_seconds);
  }
}

Span* CurrentSpan() { return t_current_span; }

uint32_t CurrentThreadId() {
  thread_local uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives static spans
  return *tracer;
}

Tracer::Tracer() : epoch_ns_(SteadyNowNanos()) {}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  epoch_ns_ = SteadyNowNanos();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

int64_t Tracer::NowMicros() const {
  int64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = epoch_ns_;
  }
  return (SteadyNowNanos() - epoch) / 1000;
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

Span::Span(const char* name, const char* category) {
  if (!Enabled()) return;
  active_ = true;
  event_.name = name;
  event_.category = category;
  event_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event_.thread_id = CurrentThreadId();
  parent_ = t_current_span;
  event_.parent_id = parent_ == nullptr ? 0 : parent_->id();
  event_.start_us = Tracer::Global().NowMicros();
  t_current_span = this;
  if (FramesEnabled()) {
    PushFrame(name);
    pushed_ = true;
  }
}

Span::~Span() {
  if (!active_) return;
  if (pushed_) PopFrame();
  event_.duration_us = Tracer::Global().NowMicros() - event_.start_us;
  t_current_span = parent_;
  Tracer::Global().Record(std::move(event_));
}

void Span::AddArg(const char* key, int64_t value) {
  if (!active_) return;
  event_.args.emplace_back(key, value);
}

}  // namespace obs
}  // namespace dxrec
