// Flight recorder for the exponential search paths (see
// docs/OBSERVABILITY.md, "Events").
//
// Complements obs/trace.h: spans answer *where time went*, events answer
// *what the algorithm decided* — which covers were accepted or rejected
// and why, how the SUB(Sigma) filter voted, how far g-homomorphism search
// got, which budgets were consumed and which one finally ran out.
//
// The sink is a bounded ring buffer: recording never blocks a search on
// memory growth, the newest events win, and overwritten ones are tallied
// in an explicit dropped counter (also mirrored into the metrics registry
// as `events.dropped`). Events are exported as JSONL, one object per
// line, and summarized in the combined run report.
//
// Everything is off by default. The cost of a disabled emission site is
// one relaxed atomic load and a branch (`obs::EventsEnabled()`), the same
// contract as spans; `bench_e8` guards the budget.
#ifndef DXREC_OBS_EVENTS_H_
#define DXREC_OBS_EVENTS_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "resilience/fault_injection.h"

namespace dxrec {

namespace resilience {
class ExecutionContext;
}  // namespace resilience

namespace obs {

namespace internal {
inline std::atomic<bool> g_events_enabled{false};
}  // namespace internal

// Gate for event emission, independent of the master obs::Enabled()
// switch (spans/metrics): `--trace` without `--events` must not pay for
// event construction, and vice versa.
inline bool EventsEnabled() {
  return internal::g_events_enabled.load(std::memory_order_relaxed);
}
void SetEventsEnabled(bool enabled);

// One recorded decision event. `type` and argument keys are static
// strings (literals at the emission sites), so an Event allocates only
// for its argument vectors and any string argument values.
struct Event {
  int64_t t_us = 0;        // µs since the Tracer epoch (shared timeline)
  uint32_t thread_id = 0;  // obs::CurrentThreadId()
  const char* type = "";   // e.g. "cover.accepted"; see the taxonomy docs
  std::vector<std::pair<const char*, int64_t>> int_args;
  std::vector<std::pair<const char*, std::string>> str_args;
};

// Process-global bounded sink. Thread-safe; recording takes the sink
// mutex (emission sites are orders of magnitude rarer than search nodes).
class EventSink {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 13;

  static EventSink& Global();

  // Resizes the ring and clears all recorded state. capacity 0 keeps the
  // current capacity (still clears).
  void Configure(size_t capacity);
  void Clear();
  size_t capacity() const;

  // Appends; when the ring is full the oldest event is overwritten and
  // counted as dropped.
  void Record(Event event);

  // Surviving events, oldest first.
  std::vector<Event> Snapshot() const;

  uint64_t recorded() const;  // total Record() calls since Clear
  uint64_t dropped() const;   // events overwritten (lost) since Clear

 private:
  EventSink() = default;

  mutable std::mutex mu_;
  std::vector<Event> ring_;
  size_t capacity_ = kDefaultCapacity;
  size_t oldest_ = 0;  // ring write cursor once full
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
};

// Records one event with the current timestamp/thread. No-op when events
// are disabled; hot paths should still pre-check EventsEnabled() so the
// argument lists are never materialized on the disabled path.
void Emit(const char* type,
          std::initializer_list<std::pair<const char*, int64_t>> int_args =
              {},
          std::initializer_list<std::pair<const char*, std::string>>
              str_args = {});

// JSONL rendering: one `{"t_us":..,"tid":..,"type":"..","args":{..}}`
// object per line. Schema documented in docs/OBSERVABILITY.md.
std::string EventsJsonl(const std::vector<Event>& events);

// Writes the global sink's surviving events as JSONL.
Status WriteEventsJsonl(const std::string& path);

// --- Budget telemetry -------------------------------------------------

// The one way to fail with a budget error: builds the structured
// kResourceExhausted status (payload accessible via
// Status::budget_info()), emits the terminal `budget.exhausted` event,
// and — when obs is enabled — appends to the budget log surfaced by the
// run report. scripts/check.sh rejects bare
// `Status::ResourceExhausted("...")` call sites outside base/ and obs/.
Status BudgetExhausted(BudgetInfo info);

// Budget exhaustions observed since the last ClearBudgetLog (recorded
// when obs::Enabled(); bounded, newest kept).
std::vector<BudgetInfo> BudgetLogSnapshot();
void ClearBudgetLog();

// Counts down one configured budget inside a search. Consume() is the
// hot-path operation — a decrement plus a mask test, no atomics — and
// every kTickPeriod consumed units it emits a `budget.tick` event,
// pulses the progress layer, and (when the meter carries a
// resilience::ExecutionContext) evaluates deadline/cancellation, so stop
// signals reach every budgeted loop at tick granularity for free. Not
// thread-safe: one meter per (single threaded) search, matching how
// every budgeted enumeration here runs.
//
// Every meter is also a deterministic fault-injection site named after
// its budget (resilience/fault_injection.h). The armed flag is cached at
// construction, so the disabled Consume() path pays no atomic loads.
class BudgetMeter {
 public:
  static constexpr uint64_t kTickPeriod = 1u << 16;

  // `name` and `phase` must be static-storage strings. `context` (may be
  // null) is checked at tick cadence; it must outlive the meter.
  BudgetMeter(const char* name, const char* phase, uint64_t limit,
              const resilience::ExecutionContext* context = nullptr)
      : name_(name),
        phase_(phase),
        limit_(limit),
        left_(limit),
        context_(context),
        injection_armed_(dxrec::testing::FaultInjectionActive()) {}

  // Consumes one unit; false once the budget is spent, the context
  // tripped, or a fault fired (the caller should fail with Exhausted()).
  bool Consume() {
    if (left_ == 0 || !stop_.ok()) return false;
    if (injection_armed_ && !InjectionOk()) return false;
    --left_;
    if (((limit_ - left_) & (kTickPeriod - 1)) == 0) return TickOk();
    return true;
  }

  uint64_t limit() const { return limit_; }
  uint64_t consumed() const { return limit_ - left_; }

  Status Exhausted() const {
    if (!stop_.ok()) return stop_;
    return BudgetExhausted({name_, limit_, consumed(), phase_});
  }

 private:
  // budget.tick event + progress pulse + context check; rare. False (with
  // stop_ latched) when the context tripped.
  bool TickOk();
  // Consults the fault injector; false (with stop_ latched) on injection.
  bool InjectionOk();

  const char* name_;
  const char* phase_;
  uint64_t limit_;
  uint64_t left_;
  const resilience::ExecutionContext* context_;
  const bool injection_armed_;
  Status stop_;  // latched context/injection failure; Ok while running
};

// Cross-worker sibling of BudgetMeter for the parallel inverse chase:
// one pool of work units drawn by many concurrent searches. Workers
// consume whole kTickPeriod batches (at the matcher pulse cadence)
// rather than single units, so the hot path stays local and the only
// shared traffic is one relaxed fetch_add per 2^16 candidates. The draw
// that crosses the limit still succeeds — totals may overshoot by at
// most one batch per worker — and *which* worker sees the dry pool is
// scheduling-dependent, like a deadline trip (docs/PARALLELISM.md).
//
// Unlike BudgetMeter, exhaustion here is detected by many workers but
// reported once: the inverse-chase merge calls Exhausted() for the
// first truncated cover in cover order, keeping the budget.exhausted
// event count deterministic.
class SharedBudget {
 public:
  static constexpr uint64_t kBatch = BudgetMeter::kTickPeriod;

  // `name`/`phase` must be static-storage strings. limit 0 = unlimited.
  SharedBudget(const char* name, const char* phase, uint64_t limit)
      : name_(name), phase_(phase), limit_(limit) {}

  // Draws `units` from the pool; false once the pool was already dry
  // before this draw.
  bool TryConsume(uint64_t units) {
    if (limit_ == 0) return true;
    uint64_t before = consumed_.fetch_add(units, std::memory_order_relaxed);
    return before < limit_;
  }

  bool Dry() const {
    return limit_ != 0 &&
           consumed_.load(std::memory_order_relaxed) >= limit_;
  }

  uint64_t limit() const { return limit_; }
  uint64_t consumed() const {
    uint64_t raw = consumed_.load(std::memory_order_relaxed);
    return limit_ == 0 ? raw : (raw < limit_ ? raw : limit_);
  }

  // Builds the structured budget error (and its one terminal event);
  // call exactly once per run, from the merging thread.
  Status Exhausted() const {
    return BudgetExhausted({name_, limit_, consumed(), phase_});
  }

 private:
  const char* name_;
  const char* phase_;
  uint64_t limit_;
  std::atomic<uint64_t> consumed_{0};
};

}  // namespace obs
}  // namespace dxrec

#endif  // DXREC_OBS_EVENTS_H_
