#include "obs/profiler.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace dxrec {
namespace obs {

namespace {

constexpr double kDefaultIntervalSeconds = 0.005;  // 200 Hz

// Registry of every thread's frame stack. Stacks are heap-allocated and
// leaked so the sampler can keep reading them after their thread exits.
std::mutex g_stacks_mu;
std::vector<FrameStack*>& RegisteredStacks() {
  static std::vector<FrameStack*>* stacks = new std::vector<FrameStack*>();
  return *stacks;
}

FrameStack* ThisThreadStack() {
  thread_local FrameStack* stack = [] {
    FrameStack* s = new FrameStack();  // leaked, see above
    s->thread_id = CurrentThreadId();
    std::lock_guard<std::mutex> lock(g_stacks_mu);
    RegisteredStacks().push_back(s);
    return s;
  }();
  return stack;
}

}  // namespace

void PushFrame(const char* name) {
  FrameStack* stack = ThisThreadStack();
  const uint32_t d = stack->depth.load(std::memory_order_relaxed);
  if (d >= FrameStack::kMaxDepth) return;  // overflow: drop, keep depth
  stack->frames[d].store(name, std::memory_order_relaxed);
  // Publish the frame before the new depth so the sampler never reads an
  // unwritten slot.
  stack->depth.store(d + 1, std::memory_order_release);
}

void PopFrame() {
  FrameStack* stack = ThisThreadStack();
  const uint32_t d = stack->depth.load(std::memory_order_relaxed);
  if (d == 0) return;  // paired with an overflowed push
  stack->depth.store(d - 1, std::memory_order_release);
}

const char* CurrentFrameName() {
  FrameStack* stack = ThisThreadStack();
  const uint32_t d = stack->depth.load(std::memory_order_relaxed);
  if (d == 0) return "";
  return stack->frames[d - 1].load(std::memory_order_relaxed);
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // leaked
  return *profiler;
}

void Profiler::Start(double interval_seconds) {
  if (interval_seconds <= 0) interval_seconds = kDefaultIntervalSeconds;
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  internal::g_frames_enabled.store(true, std::memory_order_relaxed);
  running_ = true;
  stop_requested_ = false;
  sampler_ = std::thread([this, interval_seconds] { Loop(interval_seconds); });
  // Anchored after the thread ctor: spawning can cost milliseconds on a
  // loaded box, and that startup belongs to the profiler, not to whatever
  // phase happens to be live at the first tick. (The new thread can't
  // read last_tick_ before we release thread_mu_.)
  last_tick_ = Clock::now();
}

void Profiler::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    worker = std::move(sampler_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
  // Final flush on the caller's thread: the sampler has exited, so
  // last_tick_ is stable, and the caller's own live spans (still on its
  // frame stack) get the tail attributed — this is what makes runs
  // shorter than the sampling interval show up at all, even when the
  // sampler thread was never scheduled before Stop.
  const int64_t tail_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - last_tick_)
                              .count();
  if (tail_us > 0) SampleOnce(tail_us);
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return running_;
}

void Profiler::Loop(double interval_seconds) {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::duration<double>(interval_seconds),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;  // tail attributed by Stop()'s flush
    const auto now = Clock::now();
    const int64_t dt_us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - last_tick_)
            .count();
    last_tick_ = now;
    lock.unlock();
    if (dt_us > 0) SampleOnce(dt_us);
    lock.lock();
  }
}

void Profiler::SampleOnce(int64_t dt_us) {
  std::vector<FrameStack*> stacks;
  {
    std::lock_guard<std::mutex> lock(g_stacks_mu);
    stacks = RegisteredStacks();
  }
  // Read each stack without locks: acquire the depth, then the frames
  // below it (published before the depth by PushFrame).
  struct Sampled {
    uint32_t thread_id;
    std::vector<const char*> frames;
  };
  std::vector<Sampled> live;
  for (FrameStack* stack : stacks) {
    const uint32_t d = stack->depth.load(std::memory_order_acquire);
    if (d == 0) continue;
    Sampled s;
    s.thread_id = stack->thread_id;
    s.frames.reserve(d);
    for (uint32_t i = 0; i < d && i < FrameStack::kMaxDepth; ++i) {
      const char* name = stack->frames[i].load(std::memory_order_relaxed);
      if (name == nullptr) break;  // racing pop/push; take the prefix
      s.frames.push_back(name);
    }
    if (!s.frames.empty()) live.push_back(std::move(s));
  }
  if (live.empty()) return;

  std::lock_guard<std::mutex> lock(mu_);
  for (const Sampled& s : live) {
    std::string key = "t" + std::to_string(s.thread_id);
    for (const char* frame : s.frames) {
      key.push_back(';');
      key += frame;
    }
    folded_[key] += dt_us;
    total_sampled_us_ += dt_us;
    // total: every distinct phase on the stack; self: the leaf.
    for (size_t i = 0; i < s.frames.size(); ++i) {
      bool seen_before = false;
      for (size_t j = 0; j < i; ++j) {
        if (s.frames[j] == s.frames[i]) {  // same literal: recursion
          seen_before = true;
          break;
        }
      }
      if (seen_before) continue;  // recursive phase: count total once
      phases_[s.frames[i]].total_us += dt_us;
    }
    PhaseCell& leaf = phases_[s.frames.back()];
    leaf.self_us += dt_us;
    leaf.samples += 1;
  }
}

std::string Profiler::FoldedStacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [stack, us] : folded_) {
    out += stack;
    out.push_back(' ');
    out += std::to_string(us);
    out.push_back('\n');
  }
  return out;
}

std::vector<PhaseProfile> Profiler::PhaseTable() const {
  std::vector<PhaseProfile> table;
  {
    std::lock_guard<std::mutex> lock(mu_);
    table.reserve(phases_.size());
    for (const auto& [name, cell] : phases_) {
      PhaseProfile row;
      row.name = name;
      row.self_us = cell.self_us;
      row.total_us = cell.total_us;
      row.samples = cell.samples;
      row.alloc_bytes = cell.alloc_bytes;
      row.peak_bytes = cell.peak_bytes;
      table.push_back(std::move(row));
    }
  }
  std::sort(table.begin(), table.end(),
            [](const PhaseProfile& a, const PhaseProfile& b) {
              return a.self_us != b.self_us ? a.self_us > b.self_us
                                           : a.name < b.name;
            });
  return table;
}

int64_t Profiler::TotalSampledUs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_sampled_us_;
}

void Profiler::RecordAlloc(const char* phase, int64_t alloc_bytes,
                           int64_t peak_bytes) {
  if (phase == nullptr || phase[0] == '\0') phase = "(no phase)";
  std::lock_guard<std::mutex> lock(mu_);
  PhaseCell& cell = phases_[phase];
  cell.alloc_bytes += alloc_bytes;
  cell.peak_bytes = std::max(cell.peak_bytes, peak_bytes);
}

void Profiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  folded_.clear();
  phases_.clear();
  total_sampled_us_ = 0;
}

}  // namespace obs
}  // namespace dxrec
