// Wall-clock timing for the benchmark harness.
#ifndef DXREC_UTIL_STOPWATCH_H_
#define DXREC_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dxrec {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dxrec

#endif  // DXREC_UTIL_STOPWATCH_H_
