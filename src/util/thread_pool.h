// Work-stealing thread pool and fork-join task groups for the parallel
// inverse-chase engine (docs/PARALLELISM.md).
//
// Design, sized for this workload (few hundred coarse tasks per run, each
// milliseconds-to-seconds of search):
//
//   - one bounded deque per worker; owners pop newest-first (LIFO keeps
//     nested subtasks cache-hot), thieves and helpers steal oldest-first
//     (FIFO drains a run's covers roughly in submission order);
//   - submission round-robins across queues and, when every queue is at
//     capacity, runs the task on the submitting thread instead of growing
//     a queue without bound (caller-runs backpressure);
//   - TaskGroup is the fork-join primitive: Run() submits, Wait() *helps*
//     by stealing this group's still-queued tasks onto the waiting thread
//     before blocking. Helping makes nested groups deadlock-free: a pool
//     task may open its own TaskGroup on the same pool (the per-cover
//     back-homomorphism fan-out does exactly this) because the waiter
//     executes its children instead of holding a worker hostage;
//   - cancellation is cooperative, matching resilience/execution_context:
//     a TaskGroup carries an optional ExecutionContext, and once it trips
//     Run() stops queueing and invokes tasks inline — each task's own
//     checkpoints make that invocation cheap, and every task still runs
//     exactly once, so index-tagged result slots are always filled.
//
// Tasks must not throw. The pool never spawns or retires threads after
// construction; ~ThreadPool waits for queues to drain (every TaskGroup
// waits in its destructor, so a pool outliving its groups is quiescent).
#ifndef DXREC_UTIL_THREAD_POOL_H_
#define DXREC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dxrec {

namespace resilience {
class ExecutionContext;
}  // namespace resilience

namespace util {

class TaskGroup;

struct ThreadPoolOptions {
  // Per-worker deque bound; submissions beyond it run on the caller.
  size_t queue_capacity = 256;
};

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads,
                      ThreadPoolOptions options = ThreadPoolOptions());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return options_.queue_capacity; }

  // std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  // Queues one task for `group`, consuming `fn` only on success. Returns
  // false (leaving `fn` intact for the caller to run) when every queue is
  // at capacity.
  bool Submit(std::function<void()>& fn, TaskGroup* group);

  // Pops and runs one task: the worker's own newest task first, then the
  // oldest task of any other queue. Returns false when nothing was run.
  bool RunOneAsWorker(size_t worker_index);

  // Pops and runs one still-queued task belonging to `group` (any queue,
  // oldest first). Used by TaskGroup::Wait to help.
  bool RunOneOf(TaskGroup* group);

  static void RunTask(Task task);
  void WorkerLoop(size_t worker_index);

  ThreadPoolOptions options_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<uint64_t> queued_{0};  // tasks currently sitting in queues
  std::atomic<bool> shutdown_{false};
  std::mutex idle_mu_;
  std::condition_variable work_cv_;
};

// Fork-join scope over a pool. Not thread-safe: one owner thread calls
// Run()/Wait(); the tasks themselves may run anywhere (including on the
// owner, via helping or caller-runs backpressure).
class TaskGroup {
 public:
  // Null pool (or a zero-thread pool) degrades to inline execution, so
  // callers need no separate sequential code path. `context` (optional,
  // not owned) enables the cooperative-cancellation fast path.
  explicit TaskGroup(ThreadPool* pool,
                     const resilience::ExecutionContext* context = nullptr);
  ~TaskGroup();  // waits

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Schedules fn; may execute it immediately on this thread (no pool, full
  // queues, or tripped context). Every Run'd task executes exactly once.
  void Run(std::function<void()> fn);

  // Blocks until every Run'd task finished, helping with this group's
  // still-queued tasks first.
  void Wait();

 private:
  friend class ThreadPool;

  void OnTaskDone();

  ThreadPool* pool_;
  const resilience::ExecutionContext* context_;
  size_t submitted_ = 0;  // owner-thread only
  std::atomic<size_t> done_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace dxrec

#endif  // DXREC_UTIL_THREAD_POOL_H_
