#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dxrec {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Cell(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dxrec
