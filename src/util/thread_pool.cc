#include "util/thread_pool.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/execution_context.h"

namespace dxrec {
namespace util {

namespace {

// Scheduling telemetry for the exporters (docs/OBSERVABILITY.md). One
// relaxed store/add per transition, only when collection is on.
void NoteQueueDepth(uint64_t depth) {
  if (!obs::Enabled()) return;
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("pool.queue_depth");
  gauge->Set(static_cast<int64_t>(depth));
}

void NoteSteal() {
  if (!obs::Enabled()) return;
  static obs::Counter* steals =
      obs::MetricsRegistry::Global().GetCounter("pool.steals");
  steals->Add(1);
}

}  // namespace

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

ThreadPool::ThreadPool(size_t num_threads, ThreadPoolOptions options)
    : options_(options) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Every TaskGroup waits before destruction, so the queues are empty by
  // the time the pool goes away; nothing to drain.
}

bool ThreadPool::Submit(std::function<void()>& fn, TaskGroup* group) {
  const size_t n = queues_.size();
  if (n == 0) return false;
  size_t start = next_queue_.fetch_add(1, std::memory_order_relaxed) % n;
  for (size_t k = 0; k < n; ++k) {
    WorkerQueue& queue = *queues_[(start + k) % n];
    std::unique_lock<std::mutex> lock(queue.mu);
    if (queue.tasks.size() >= options_.queue_capacity) continue;
    queue.tasks.push_back(Task{std::move(fn), group});
    lock.unlock();
    NoteQueueDepth(queued_.fetch_add(1, std::memory_order_release) + 1);
    work_cv_.notify_one();
    return true;
  }
  return false;  // every queue full: caller runs
}

void ThreadPool::RunTask(Task task) {
  task.fn();
  if (task.group != nullptr) task.group->OnTaskDone();
}

bool ThreadPool::RunOneAsWorker(size_t worker_index) {
  const size_t n = queues_.size();
  // Own queue, newest first.
  {
    WorkerQueue& own = *queues_[worker_index];
    std::unique_lock<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      Task task = std::move(own.tasks.back());
      own.tasks.pop_back();
      lock.unlock();
      NoteQueueDepth(queued_.fetch_sub(1, std::memory_order_release) - 1);
      RunTask(std::move(task));
      return true;
    }
  }
  // Steal, oldest first.
  for (size_t k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(worker_index + k) % n];
    std::unique_lock<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    Task task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    lock.unlock();
    NoteSteal();
    NoteQueueDepth(queued_.fetch_sub(1, std::memory_order_release) - 1);
    RunTask(std::move(task));
    return true;
  }
  return false;
}

bool ThreadPool::RunOneOf(TaskGroup* group) {
  for (std::unique_ptr<WorkerQueue>& queue_ptr : queues_) {
    WorkerQueue& queue = *queue_ptr;
    std::unique_lock<std::mutex> lock(queue.mu);
    for (auto it = queue.tasks.begin(); it != queue.tasks.end(); ++it) {
      if (it->group != group) continue;
      Task task = std::move(*it);
      queue.tasks.erase(it);
      lock.unlock();
      NoteQueueDepth(queued_.fetch_sub(1, std::memory_order_release) - 1);
      RunTask(std::move(task));
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    if (RunOneAsWorker(worker_index)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    work_cv_.wait(lock, [this] {
      return shutdown_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

TaskGroup::TaskGroup(ThreadPool* pool,
                     const resilience::ExecutionContext* context)
    : pool_(pool), context_(context) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Run(std::function<void()> fn) {
  const bool tripped =
      context_ != nullptr &&
      context_->Check() != resilience::StopCause::kNone;
  if (pool_ != nullptr && pool_->num_threads() > 0 && !tripped) {
    ++submitted_;
    if (pool_->Submit(fn, this)) return;  // consumes fn only on success
    // Queues full: run here, keeping the submitted/done books balanced.
    --submitted_;
  }
  fn();
}

void TaskGroup::Wait() {
  if (submitted_ == 0) return;
  if (pool_ != nullptr) {
    while (done_.load(std::memory_order_acquire) < submitted_ &&
           pool_->RunOneOf(this)) {
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return done_.load(std::memory_order_acquire) >= submitted_;
  });
  // All tasks finished; reset so the group can be reused for a second
  // fork-join round by the same owner.
  submitted_ = 0;
  done_.store(0, std::memory_order_relaxed);
}

void TaskGroup::OnTaskDone() {
  // Increment AND notify under the lock. The lock orders the increment
  // against the waiter's predicate re-check (no missed notify), and
  // notifying before release means Wait() cannot observe completion and
  // let the group be destroyed while this thread still touches cv_.
  std::lock_guard<std::mutex> lock(mu_);
  done_.fetch_add(1, std::memory_order_release);
  cv_.notify_all();
}

}  // namespace util
}  // namespace dxrec
