#include "util/stopwatch.h"

// Header-only; this translation unit anchors the target.
