// Aligned text tables for bench output: the harness prints rows in the
// shape an evaluation-section table would have.
#ifndef DXREC_UTIL_TABLE_H_
#define DXREC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dxrec {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Adds a row; cells beyond the header count are dropped, missing cells
  // are blank.
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatting.
  static std::string Cell(const std::string& s) { return s; }
  static std::string Cell(const char* s) { return s; }
  static std::string Cell(size_t v) { return std::to_string(v); }
  static std::string Cell(int64_t v) { return std::to_string(v); }
  static std::string Cell(double v, int precision = 3);

  // Renders with column alignment and a header separator.
  std::string ToString() const;

  // Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dxrec

#endif  // DXREC_UTIL_TABLE_H_
