file(REMOVE_RECURSE
  "CMakeFiles/sound_answers.dir/sound_answers.cpp.o"
  "CMakeFiles/sound_answers.dir/sound_answers.cpp.o.d"
  "sound_answers"
  "sound_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sound_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
