# Empty dependencies file for sound_answers.
# This may be replaced when dependencies are built.
