file(REMOVE_RECURSE
  "CMakeFiles/damage_repair.dir/damage_repair.cpp.o"
  "CMakeFiles/damage_repair.dir/damage_repair.cpp.o.d"
  "damage_repair"
  "damage_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damage_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
