# Empty compiler generated dependencies file for damage_repair.
# This may be replaced when dependencies are built.
