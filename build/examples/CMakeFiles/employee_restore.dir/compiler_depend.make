# Empty compiler generated dependencies file for employee_restore.
# This may be replaced when dependencies are built.
