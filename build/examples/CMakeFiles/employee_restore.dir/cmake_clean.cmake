file(REMOVE_RECURSE
  "CMakeFiles/employee_restore.dir/employee_restore.cpp.o"
  "CMakeFiles/employee_restore.dir/employee_restore.cpp.o.d"
  "employee_restore"
  "employee_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
