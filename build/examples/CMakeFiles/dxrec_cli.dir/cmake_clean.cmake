file(REMOVE_RECURSE
  "CMakeFiles/dxrec_cli.dir/dxrec_cli.cpp.o"
  "CMakeFiles/dxrec_cli.dir/dxrec_cli.cpp.o.d"
  "dxrec_cli"
  "dxrec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dxrec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
