# Empty dependencies file for dxrec_cli.
# This may be replaced when dependencies are built.
