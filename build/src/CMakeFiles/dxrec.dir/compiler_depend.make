# Empty compiler generated dependencies file for dxrec.
# This may be replaced when dependencies are built.
