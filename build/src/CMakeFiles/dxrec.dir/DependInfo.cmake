
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/fresh.cc" "src/CMakeFiles/dxrec.dir/base/fresh.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/base/fresh.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/dxrec.dir/base/status.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/base/status.cc.o.d"
  "/root/repo/src/base/substitution.cc" "src/CMakeFiles/dxrec.dir/base/substitution.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/base/substitution.cc.o.d"
  "/root/repo/src/base/symbol_table.cc" "src/CMakeFiles/dxrec.dir/base/symbol_table.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/base/symbol_table.cc.o.d"
  "/root/repo/src/base/term.cc" "src/CMakeFiles/dxrec.dir/base/term.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/base/term.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/CMakeFiles/dxrec.dir/chase/chase.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/chase/chase.cc.o.d"
  "/root/repo/src/chase/evaluation.cc" "src/CMakeFiles/dxrec.dir/chase/evaluation.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/chase/evaluation.cc.o.d"
  "/root/repo/src/chase/homomorphism.cc" "src/CMakeFiles/dxrec.dir/chase/homomorphism.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/chase/homomorphism.cc.o.d"
  "/root/repo/src/chase/instance_core.cc" "src/CMakeFiles/dxrec.dir/chase/instance_core.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/chase/instance_core.cc.o.d"
  "/root/repo/src/core/certain.cc" "src/CMakeFiles/dxrec.dir/core/certain.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/certain.cc.o.d"
  "/root/repo/src/core/composition.cc" "src/CMakeFiles/dxrec.dir/core/composition.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/composition.cc.o.d"
  "/root/repo/src/core/cover.cc" "src/CMakeFiles/dxrec.dir/core/cover.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/cover.cc.o.d"
  "/root/repo/src/core/cq_subuniversal.cc" "src/CMakeFiles/dxrec.dir/core/cq_subuniversal.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/cq_subuniversal.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/dxrec.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/engine.cc.o.d"
  "/root/repo/src/core/extended_recovery.cc" "src/CMakeFiles/dxrec.dir/core/extended_recovery.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/extended_recovery.cc.o.d"
  "/root/repo/src/core/hom_set.cc" "src/CMakeFiles/dxrec.dir/core/hom_set.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/hom_set.cc.o.d"
  "/root/repo/src/core/inverse_chase.cc" "src/CMakeFiles/dxrec.dir/core/inverse_chase.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/inverse_chase.cc.o.d"
  "/root/repo/src/core/max_recovery.cc" "src/CMakeFiles/dxrec.dir/core/max_recovery.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/max_recovery.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/dxrec.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/recovery.cc" "src/CMakeFiles/dxrec.dir/core/recovery.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/recovery.cc.o.d"
  "/root/repo/src/core/repair.cc" "src/CMakeFiles/dxrec.dir/core/repair.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/repair.cc.o.d"
  "/root/repo/src/core/subsumption.cc" "src/CMakeFiles/dxrec.dir/core/subsumption.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/subsumption.cc.o.d"
  "/root/repo/src/core/tractable.cc" "src/CMakeFiles/dxrec.dir/core/tractable.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/tractable.cc.o.d"
  "/root/repo/src/core/view_recovery.cc" "src/CMakeFiles/dxrec.dir/core/view_recovery.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/core/view_recovery.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/CMakeFiles/dxrec.dir/datagen/generators.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/datagen/generators.cc.o.d"
  "/root/repo/src/datagen/random.cc" "src/CMakeFiles/dxrec.dir/datagen/random.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/datagen/random.cc.o.d"
  "/root/repo/src/datagen/scenarios.cc" "src/CMakeFiles/dxrec.dir/datagen/scenarios.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/datagen/scenarios.cc.o.d"
  "/root/repo/src/logic/dependency_set.cc" "src/CMakeFiles/dxrec.dir/logic/dependency_set.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/dependency_set.cc.o.d"
  "/root/repo/src/logic/disjunctive.cc" "src/CMakeFiles/dxrec.dir/logic/disjunctive.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/disjunctive.cc.o.d"
  "/root/repo/src/logic/io.cc" "src/CMakeFiles/dxrec.dir/logic/io.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/io.cc.o.d"
  "/root/repo/src/logic/parser.cc" "src/CMakeFiles/dxrec.dir/logic/parser.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/parser.cc.o.d"
  "/root/repo/src/logic/printer.cc" "src/CMakeFiles/dxrec.dir/logic/printer.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/printer.cc.o.d"
  "/root/repo/src/logic/query.cc" "src/CMakeFiles/dxrec.dir/logic/query.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/query.cc.o.d"
  "/root/repo/src/logic/query_containment.cc" "src/CMakeFiles/dxrec.dir/logic/query_containment.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/query_containment.cc.o.d"
  "/root/repo/src/logic/tgd.cc" "src/CMakeFiles/dxrec.dir/logic/tgd.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/tgd.cc.o.d"
  "/root/repo/src/logic/unification.cc" "src/CMakeFiles/dxrec.dir/logic/unification.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/logic/unification.cc.o.d"
  "/root/repo/src/relational/glb.cc" "src/CMakeFiles/dxrec.dir/relational/glb.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/relational/glb.cc.o.d"
  "/root/repo/src/relational/instance.cc" "src/CMakeFiles/dxrec.dir/relational/instance.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/relational/instance.cc.o.d"
  "/root/repo/src/relational/instance_ops.cc" "src/CMakeFiles/dxrec.dir/relational/instance_ops.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/relational/instance_ops.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/dxrec.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/dxrec.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/relational/tuple.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/dxrec.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/dxrec.dir/util/table.cc.o" "gcc" "src/CMakeFiles/dxrec.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
