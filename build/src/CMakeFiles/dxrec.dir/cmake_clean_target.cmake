file(REMOVE_RECURSE
  "libdxrec.a"
)
