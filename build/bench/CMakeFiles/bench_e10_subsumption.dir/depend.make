# Empty dependencies file for bench_e10_subsumption.
# This may be replaced when dependencies are built.
