file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_subsumption.dir/bench_e10_subsumption.cc.o"
  "CMakeFiles/bench_e10_subsumption.dir/bench_e10_subsumption.cc.o.d"
  "bench_e10_subsumption"
  "bench_e10_subsumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_subsumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
