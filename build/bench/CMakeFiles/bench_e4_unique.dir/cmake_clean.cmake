file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_unique.dir/bench_e4_unique.cc.o"
  "CMakeFiles/bench_e4_unique.dir/bench_e4_unique.cc.o.d"
  "bench_e4_unique"
  "bench_e4_unique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_unique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
