file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_subuniversal.dir/bench_e6_subuniversal.cc.o"
  "CMakeFiles/bench_e6_subuniversal.dir/bench_e6_subuniversal.cc.o.d"
  "bench_e6_subuniversal"
  "bench_e6_subuniversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_subuniversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
