# Empty dependencies file for bench_e6_subuniversal.
# This may be replaced when dependencies are built.
