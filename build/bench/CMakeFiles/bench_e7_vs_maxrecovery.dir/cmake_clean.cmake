file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_vs_maxrecovery.dir/bench_e7_vs_maxrecovery.cc.o"
  "CMakeFiles/bench_e7_vs_maxrecovery.dir/bench_e7_vs_maxrecovery.cc.o.d"
  "bench_e7_vs_maxrecovery"
  "bench_e7_vs_maxrecovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_vs_maxrecovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
