# Empty dependencies file for bench_e7_vs_maxrecovery.
# This may be replaced when dependencies are built.
