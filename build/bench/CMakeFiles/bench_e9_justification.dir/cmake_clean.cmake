file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_justification.dir/bench_e9_justification.cc.o"
  "CMakeFiles/bench_e9_justification.dir/bench_e9_justification.cc.o.d"
  "bench_e9_justification"
  "bench_e9_justification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_justification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
