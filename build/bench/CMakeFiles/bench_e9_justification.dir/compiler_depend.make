# Empty compiler generated dependencies file for bench_e9_justification.
# This may be replaced when dependencies are built.
