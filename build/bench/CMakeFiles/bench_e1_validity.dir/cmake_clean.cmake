file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_validity.dir/bench_e1_validity.cc.o"
  "CMakeFiles/bench_e1_validity.dir/bench_e1_validity.cc.o.d"
  "bench_e1_validity"
  "bench_e1_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
