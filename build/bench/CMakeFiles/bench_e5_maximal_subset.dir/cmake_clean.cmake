file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_maximal_subset.dir/bench_e5_maximal_subset.cc.o"
  "CMakeFiles/bench_e5_maximal_subset.dir/bench_e5_maximal_subset.cc.o.d"
  "bench_e5_maximal_subset"
  "bench_e5_maximal_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_maximal_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
