# Empty dependencies file for bench_e5_maximal_subset.
# This may be replaced when dependencies are built.
