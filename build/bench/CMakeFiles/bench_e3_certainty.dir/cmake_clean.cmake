file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_certainty.dir/bench_e3_certainty.cc.o"
  "CMakeFiles/bench_e3_certainty.dir/bench_e3_certainty.cc.o.d"
  "bench_e3_certainty"
  "bench_e3_certainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_certainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
