# Empty dependencies file for bench_e12_soundness.
# This may be replaced when dependencies are built.
