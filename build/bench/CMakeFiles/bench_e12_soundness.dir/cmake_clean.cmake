file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_soundness.dir/bench_e12_soundness.cc.o"
  "CMakeFiles/bench_e12_soundness.dir/bench_e12_soundness.cc.o.d"
  "bench_e12_soundness"
  "bench_e12_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
