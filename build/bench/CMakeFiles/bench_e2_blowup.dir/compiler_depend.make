# Empty compiler generated dependencies file for bench_e2_blowup.
# This may be replaced when dependencies are built.
