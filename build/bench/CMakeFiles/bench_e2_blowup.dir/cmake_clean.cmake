file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_blowup.dir/bench_e2_blowup.cc.o"
  "CMakeFiles/bench_e2_blowup.dir/bench_e2_blowup.cc.o.d"
  "bench_e2_blowup"
  "bench_e2_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
