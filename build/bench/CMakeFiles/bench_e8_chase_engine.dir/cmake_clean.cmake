file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_chase_engine.dir/bench_e8_chase_engine.cc.o"
  "CMakeFiles/bench_e8_chase_engine.dir/bench_e8_chase_engine.cc.o.d"
  "bench_e8_chase_engine"
  "bench_e8_chase_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_chase_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
