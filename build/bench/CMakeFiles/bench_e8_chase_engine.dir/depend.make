# Empty dependencies file for bench_e8_chase_engine.
# This may be replaced when dependencies are built.
