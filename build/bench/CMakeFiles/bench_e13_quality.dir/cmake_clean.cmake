file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_quality.dir/bench_e13_quality.cc.o"
  "CMakeFiles/bench_e13_quality.dir/bench_e13_quality.cc.o.d"
  "bench_e13_quality"
  "bench_e13_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
