# Empty dependencies file for cq_subuniversal_test.
# This may be replaced when dependencies are built.
