file(REMOVE_RECURSE
  "CMakeFiles/cq_subuniversal_test.dir/cq_subuniversal_test.cc.o"
  "CMakeFiles/cq_subuniversal_test.dir/cq_subuniversal_test.cc.o.d"
  "cq_subuniversal_test"
  "cq_subuniversal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_subuniversal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
