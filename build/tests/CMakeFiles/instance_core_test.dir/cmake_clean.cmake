file(REMOVE_RECURSE
  "CMakeFiles/instance_core_test.dir/instance_core_test.cc.o"
  "CMakeFiles/instance_core_test.dir/instance_core_test.cc.o.d"
  "instance_core_test"
  "instance_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
