# Empty dependencies file for instance_core_test.
# This may be replaced when dependencies are built.
