file(REMOVE_RECURSE
  "CMakeFiles/inverse_chase_test.dir/inverse_chase_test.cc.o"
  "CMakeFiles/inverse_chase_test.dir/inverse_chase_test.cc.o.d"
  "inverse_chase_test"
  "inverse_chase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverse_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
