# Empty dependencies file for inverse_chase_test.
# This may be replaced when dependencies are built.
