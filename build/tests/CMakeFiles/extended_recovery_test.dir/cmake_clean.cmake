file(REMOVE_RECURSE
  "CMakeFiles/extended_recovery_test.dir/extended_recovery_test.cc.o"
  "CMakeFiles/extended_recovery_test.dir/extended_recovery_test.cc.o.d"
  "extended_recovery_test"
  "extended_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
