# Empty dependencies file for extended_recovery_test.
# This may be replaced when dependencies are built.
