# Empty compiler generated dependencies file for hom_index_property_test.
# This may be replaced when dependencies are built.
