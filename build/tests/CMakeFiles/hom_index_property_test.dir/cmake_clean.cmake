file(REMOVE_RECURSE
  "CMakeFiles/hom_index_property_test.dir/hom_index_property_test.cc.o"
  "CMakeFiles/hom_index_property_test.dir/hom_index_property_test.cc.o.d"
  "hom_index_property_test"
  "hom_index_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hom_index_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
