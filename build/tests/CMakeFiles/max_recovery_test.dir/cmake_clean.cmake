file(REMOVE_RECURSE
  "CMakeFiles/max_recovery_test.dir/max_recovery_test.cc.o"
  "CMakeFiles/max_recovery_test.dir/max_recovery_test.cc.o.d"
  "max_recovery_test"
  "max_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
