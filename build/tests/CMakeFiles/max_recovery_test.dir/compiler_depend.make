# Empty compiler generated dependencies file for max_recovery_test.
# This may be replaced when dependencies are built.
