file(REMOVE_RECURSE
  "CMakeFiles/query_containment_test.dir/query_containment_test.cc.o"
  "CMakeFiles/query_containment_test.dir/query_containment_test.cc.o.d"
  "query_containment_test"
  "query_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
