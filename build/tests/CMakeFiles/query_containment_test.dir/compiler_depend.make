# Empty compiler generated dependencies file for query_containment_test.
# This may be replaced when dependencies are built.
